"""Register-fragment accounting for one simulated thread block.

Paper section 4.1(a), *fragment caching*: Tensor-Core accumulators live in
registers ("fragments"), and dissection studies show one block of 8 warps
can address roughly 256 KB of them -- more than shared memory.  APMM
exploits this by keeping all ``bm x bn`` int32 output tiles resident in
fragments across the K loop, never spilling them to shared memory.

:class:`FragmentFile` enforces the capacity so tiling configurations that
would not fit on real hardware fail loudly in the simulator, and records
the high-water mark the performance model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FragmentFile", "FragmentAllocation"]


@dataclass
class FragmentAllocation:
    """A live fragment: a named, shaped register allocation."""

    name: str
    array: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class FragmentFile:
    """Tracks fragment allocations of one thread block against capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._live: dict[str, FragmentAllocation] = {}
        self.peak_bytes = 0

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._live.values())

    def allocate(
        self, name: str, shape: tuple[int, ...], dtype=np.int32
    ) -> np.ndarray:
        """Allocate a zeroed fragment; raises if capacity would be exceeded."""
        if name in self._live:
            raise KeyError(f"fragment {name!r} already allocated")
        arr = np.zeros(shape, dtype=dtype)
        new_used = self.used_bytes + arr.nbytes
        if new_used > self.capacity_bytes:
            raise MemoryError(
                f"fragment file overflow: allocating {name!r} ({arr.nbytes} B) "
                f"would use {new_used} B of {self.capacity_bytes} B"
            )
        self._live[name] = FragmentAllocation(name, arr)
        self.peak_bytes = max(self.peak_bytes, new_used)
        return arr

    def free(self, name: str) -> None:
        """Release a fragment."""
        try:
            del self._live[name]
        except KeyError as exc:
            raise KeyError(f"fragment {name!r} is not allocated") from exc

    def get(self, name: str) -> np.ndarray:
        return self._live[name].array

    def __contains__(self, name: str) -> bool:
        return name in self._live

    def reset(self) -> None:
        """Free everything (block exit); peak is preserved."""
        self._live.clear()
