"""Device specifications for the simulated GPUs.

The paper evaluates on two Ampere parts -- GeForce RTX 3090 (GA102) and
Tesla A100 (GA100).  :class:`DeviceSpec` captures the architectural numbers
the kernels and the performance model need:

* SM count / clock / DRAM bandwidth -- occupancy and roofline terms;
* per-precision Tensor-Core peak throughput -- emulation trade-off terms
  (e.g. A100's int1 peak is 8x its int8 peak, GA102's only 4x, which is why
  the paper's A100 speedups over int8 are larger, Fig. 6 vs Fig. 5);
* shared-memory / register-file capacities -- tiling-legality checks for
  the double-caching design (paper section 4.1: one block of 8 warps owns
  up to 256 KB of fragment storage);
* kernel launch overhead -- the latency floor that makes all small APMM
  variants cluster around ~7 us in the paper's Table 4.

Peak numbers follow the public Ampere whitepaper/datasheets (dense, no
sparsity).  They parameterize the model; the *shape* of every reproduced
result comes from counted work, not from these constants alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["DeviceSpec", "RTX3090", "A100", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of one simulated GPU."""

    name: str
    sm_count: int
    clock_ghz: float
    dram_bandwidth_gbs: float
    shared_mem_per_sm_bytes: int
    max_shared_mem_per_block_bytes: int
    register_file_per_sm_bytes: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    #: Dense peak throughput in tera-ops/s per compute class.  Keys:
    #: ``int1`` (bmma XOR/AND), ``int4``, ``int8`` (imma), ``fp16`` (hmma),
    #: ``fp32`` (CUDA cores, FMA counted as 2 ops).
    peak_tops: Mapping[str, float]
    #: Fixed cost charged per kernel launch (microseconds), covering launch,
    #: sync and driver overhead as observed by event timing.
    launch_overhead_us: float
    #: Fraction of nominal DRAM bandwidth achievable by well-coalesced
    #: kernels (streaming efficiency).
    dram_efficiency: float = 0.82

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError(f"sm_count must be positive, got {self.sm_count}")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.dram_bandwidth_gbs <= 0:
            raise ValueError("dram_bandwidth_gbs must be positive")
        if not 0 < self.dram_efficiency <= 1:
            raise ValueError("dram_efficiency must be in (0, 1]")
        missing = {"int1", "int4", "int8", "fp16", "fp32"} - set(self.peak_tops)
        if missing:
            raise ValueError(f"peak_tops missing classes: {sorted(missing)}")
        object.__setattr__(self, "peak_tops", MappingProxyType(dict(self.peak_tops)))

    def peak_ops_per_sec(self, compute_class: str) -> float:
        """Peak throughput in scalar ops/second for a compute class."""
        try:
            return self.peak_tops[compute_class] * 1e12
        except KeyError as exc:
            raise KeyError(
                f"{self.name} has no compute class {compute_class!r}; "
                f"available: {sorted(self.peak_tops)}"
            ) from exc

    @property
    def fragment_bytes_per_block(self) -> int:
        """Register-fragment capacity of one block of 8 warps.

        Paper section 4.1(a): dissection studies show one GPU block of
        8 warps can address up to 256 KB of fragment storage.
        """
        return min(self.register_file_per_sm_bytes, 256 * 1024)


#: GeForce RTX 3090 (GA102).  82 SMs at ~1.7 GHz; GDDR6X 936 GB/s.
#: Tensor peaks (dense): fp16 142, int8 284, int4 568, int1 1136 TOPS;
#: CUDA-core fp32 35.6 TFLOPS.
RTX3090 = DeviceSpec(
    name="RTX3090",
    sm_count=82,
    clock_ghz=1.695,
    dram_bandwidth_gbs=936.0,
    shared_mem_per_sm_bytes=128 * 1024,
    max_shared_mem_per_block_bytes=100 * 1024,
    register_file_per_sm_bytes=256 * 1024,
    max_warps_per_sm=48,
    max_blocks_per_sm=16,
    peak_tops={
        "int1": 1136.0,
        "int4": 568.0,
        "int8": 284.0,
        "fp16": 142.0,
        "fp32": 35.6,
    },
    launch_overhead_us=5.6,
)

#: Tesla A100 (GA100, 40 GB SXM).  108 SMs at 1.41 GHz; HBM2 1555 GB/s.
#: Tensor peaks (dense): fp16 312, int8 624, int4 1248, int1 4992 TOPS;
#: CUDA-core fp32 19.5 TFLOPS.  Note int1 is 8x int8 (vs 4x on GA102).
A100 = DeviceSpec(
    name="A100",
    sm_count=108,
    clock_ghz=1.41,
    dram_bandwidth_gbs=1555.0,
    shared_mem_per_sm_bytes=164 * 1024,
    max_shared_mem_per_block_bytes=160 * 1024,
    register_file_per_sm_bytes=256 * 1024,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    peak_tops={
        "int1": 4992.0,
        "int4": 1248.0,
        "int8": 624.0,
        "fp16": 312.0,
        "fp32": 19.5,
    },
    launch_overhead_us=5.2,
)

DEVICES: Mapping[str, DeviceSpec] = MappingProxyType(
    {d.name: d for d in (RTX3090, A100)}
)


def get_device(name: str) -> DeviceSpec:
    """Look up a registered device by (case-insensitive) name."""
    key = name.strip().upper()
    for dev_name, dev in DEVICES.items():
        if dev_name.upper() == key:
            return dev
    raise KeyError(f"unknown device {name!r}; registered: {list(DEVICES)}")
