"""Warp-level MMA primitives of the simulated Ampere Tensor Core.

The contract mirrors the CUDA WMMA sub-byte API (paper section 2.3):

* ``bmma`` -- the binary primitive: two 1-bit operand fragments of shape
  ``8 x 128`` (stored as two ``uint64`` words per row), Boolean ``XOR`` or
  ``AND`` combination, popcount accumulation into an ``8 x 8`` int32
  fragment.  Exactly like hardware, the primitive accumulates the *raw
  popcount*; encoding corrections (``K - 2p`` etc.) are software's job
  (:mod:`repro.core.opselect`).
* ``imma4`` / ``imma8`` -- the int4 (8x8x32) and int8 (16x16x16) integer
  primitives with int32 accumulation, used by the CUTLASS/cuBLAS baseline
  simulations.
* ``hmma`` -- fp16 16x16x16 with fp32 accumulation.

All primitives validate shapes/dtypes the way the hardware ISA would
(misaligned fragments are a compile error on a real GPU) and check the
int32 accumulator for overflow, which real Tensor Cores silently wrap --
catching it here is strictly safer.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import popcount
from ..core.opselect import TCOp

__all__ = [
    "BMMA_M",
    "BMMA_N",
    "BMMA_K",
    "BMMA_WORDS",
    "IMMA4_SHAPE",
    "IMMA8_SHAPE",
    "HMMA_SHAPE",
    "bmma",
    "imma4",
    "imma8",
    "hmma",
]

#: bmma tile shape: m8 n8 k128 (CUDA ``wmma::experimental`` b1 shape).
BMMA_M, BMMA_N, BMMA_K = 8, 8, 128
#: 128 bits per row = 2 x uint64 words.
BMMA_WORDS = BMMA_K // 64

#: int4 primitive shape m8 n8 k32.
IMMA4_SHAPE = (8, 8, 32)
#: int8 primitive shape m16 n16 k16.
IMMA8_SHAPE = (16, 16, 16)
#: fp16 primitive shape m16 n16 k16.
HMMA_SHAPE = (16, 16, 16)

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1


def _check_acc_range(acc: np.ndarray) -> None:
    if acc.size and (acc.min() < _INT32_MIN or acc.max() > _INT32_MAX):
        raise OverflowError(
            "int32 accumulator overflow in MMA primitive: "
            f"range [{acc.min()}, {acc.max()}]"
        )


def bmma(
    frag_a: np.ndarray,
    frag_b: np.ndarray,
    frag_c: np.ndarray,
    op: TCOp = TCOp.XOR,
) -> np.ndarray:
    """One binary Tensor-Core MMA: ``C += popc(A row_op B)`` per (i, j).

    Parameters
    ----------
    frag_a:
        ``(8, 2)`` uint64 -- 8 rows of 128 packed bits (K-major).
    frag_b:
        ``(8, 2)`` uint64 -- 8 columns of B, also K-major rows (the
        hardware expects B in column-major K order, i.e. row i of the
        fragment is column i of the logical matrix).
    frag_c:
        ``(8, 8)`` int32 accumulator, updated in place and returned.
    op:
        ``TCOp.XOR`` (Turing+) or ``TCOp.AND`` (Ampere+).

    Returns
    -------
    np.ndarray
        The updated ``frag_c``.
    """
    frag_a = np.asarray(frag_a)
    frag_b = np.asarray(frag_b)
    if frag_a.shape != (BMMA_M, BMMA_WORDS) or frag_a.dtype != np.uint64:
        raise ValueError(
            f"frag_a must be uint64 ({BMMA_M}, {BMMA_WORDS}), got "
            f"{frag_a.dtype} {frag_a.shape}"
        )
    if frag_b.shape != (BMMA_N, BMMA_WORDS) or frag_b.dtype != np.uint64:
        raise ValueError(
            f"frag_b must be uint64 ({BMMA_N}, {BMMA_WORDS}), got "
            f"{frag_b.dtype} {frag_b.shape}"
        )
    if frag_c.shape != (BMMA_M, BMMA_N) or frag_c.dtype != np.int32:
        raise ValueError(
            f"frag_c must be int32 ({BMMA_M}, {BMMA_N}), got "
            f"{frag_c.dtype} {frag_c.shape}"
        )
    if not isinstance(op, TCOp):
        raise TypeError(f"op must be a TCOp, got {type(op).__name__}")

    a = frag_a[:, None, :]  # (8, 1, 2)
    b = frag_b[None, :, :]  # (1, 8, 2)
    combined = (a & b) if op is TCOp.AND else (a ^ b)
    update = popcount(combined).sum(axis=-1)
    acc = frag_c.astype(np.int64) + update
    _check_acc_range(acc)
    frag_c[...] = acc.astype(np.int32)
    return frag_c


def _integer_mma(
    frag_a: np.ndarray,
    frag_b: np.ndarray,
    frag_c: np.ndarray,
    shape: tuple[int, int, int],
    lo: int,
    hi: int,
    kind: str,
) -> np.ndarray:
    m, n, k = shape
    frag_a = np.asarray(frag_a)
    frag_b = np.asarray(frag_b)
    if frag_a.shape != (m, k):
        raise ValueError(f"{kind} frag_a must be ({m}, {k}), got {frag_a.shape}")
    if frag_b.shape != (n, k):
        raise ValueError(f"{kind} frag_b must be ({n}, {k}), got {frag_b.shape}")
    if frag_c.shape != (m, n) or frag_c.dtype != np.int32:
        raise ValueError(f"{kind} frag_c must be int32 ({m}, {n})")
    if frag_a.size and (frag_a.min() < lo or frag_a.max() > hi):
        raise ValueError(f"{kind} frag_a values outside [{lo}, {hi}]")
    if frag_b.size and (frag_b.min() < lo or frag_b.max() > hi):
        raise ValueError(f"{kind} frag_b values outside [{lo}, {hi}]")
    acc = frag_c.astype(np.int64) + frag_a.astype(np.int64) @ frag_b.astype(np.int64).T
    _check_acc_range(acc)
    frag_c[...] = acc.astype(np.int32)
    return frag_c


def imma4(frag_a, frag_b, frag_c) -> np.ndarray:
    """int4 MMA (m8 n8 k32): signed operands in [-8, 7], int32 accumulate."""
    return _integer_mma(frag_a, frag_b, frag_c, IMMA4_SHAPE, -8, 7, "imma4")


def imma8(frag_a, frag_b, frag_c) -> np.ndarray:
    """int8 MMA (m16 n16 k16): signed operands in [-128, 127], int32 accumulate."""
    return _integer_mma(frag_a, frag_b, frag_c, IMMA8_SHAPE, -128, 127, "imma8")


def hmma(frag_a, frag_b, frag_c) -> np.ndarray:
    """fp16 MMA (m16 n16 k16) with fp32 accumulation.

    Operands are rounded to fp16 on load (fragment precision), products
    accumulate in fp32 -- the numerically relevant property of the hardware.
    """
    m, n, k = HMMA_SHAPE
    frag_a = np.asarray(frag_a, dtype=np.float16)
    frag_b = np.asarray(frag_b, dtype=np.float16)
    if frag_a.shape != (m, k) or frag_b.shape != (n, k):
        raise ValueError(
            f"hmma fragments must be ({m},{k}) and ({n},{k}); got "
            f"{frag_a.shape} and {frag_b.shape}"
        )
    if frag_c.shape != (m, n) or frag_c.dtype != np.float32:
        raise ValueError(f"hmma frag_c must be float32 ({m}, {n})")
    frag_c += (frag_a.astype(np.float32) @ frag_b.astype(np.float32).T)
    return frag_c
