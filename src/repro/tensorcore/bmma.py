"""Warp-level MMA primitives of the simulated Ampere Tensor Core.

The contract mirrors the CUDA WMMA sub-byte API (paper section 2.3):

* ``bmma`` -- the binary primitive: two 1-bit operand fragments of shape
  ``8 x 128`` (stored as two ``uint64`` words per row), Boolean ``XOR`` or
  ``AND`` combination, popcount accumulation into an ``8 x 8`` int32
  fragment.  Exactly like hardware, the primitive accumulates the *raw
  popcount*; encoding corrections (``K - 2p`` etc.) are software's job
  (:mod:`repro.core.opselect`).
* ``bmma_batched`` -- the whole-matrix generalization of ``bmma``: packed
  operand matrices of shape ``(rows, nwords)`` in one call, popcount-reduce
  GEMM into an int64 result.  This is the word-level primitive the
  vectorized packed execution backend (:mod:`repro.core.packed`) issues
  instead of sliding ``8x8x128`` fragments in Python loops.  Internally it
  routes the Boolean reduction through whichever simulated unit is fastest
  -- native word ops (``AND``/``XOR`` + ``np.bitwise_count``) for small
  problems, or the FMA pipes via the popcount/dot-product identity for
  large ones, the same observation Ootomo & Yokota make for emulated
  tensor-core paths -- while producing bit-identical popcount sums either
  way.
* ``imma4`` / ``imma8`` -- the int4 (8x8x32) and int8 (16x16x16) integer
  primitives with int32 accumulation, used by the CUTLASS/cuBLAS baseline
  simulations.
* ``hmma`` -- fp16 16x16x16 with fp32 accumulation.

All primitives validate shapes/dtypes the way the hardware ISA would
(misaligned fragments are a compile error on a real GPU) and check the
int32 accumulator for overflow, which real Tensor Cores silently wrap --
catching it here is strictly safer.
"""

from __future__ import annotations

import numpy as np

from ..core import backends
from ..core.bitops import WORD_BITS, popcount, unpack_bits
from ..core.opselect import TCOp

__all__ = [
    "BMMA_M",
    "BMMA_N",
    "BMMA_K",
    "BMMA_WORDS",
    "BMMA_BATCH_ENGINES",
    "BMMA_FMA_THRESHOLD",
    "IMMA4_SHAPE",
    "IMMA8_SHAPE",
    "HMMA_SHAPE",
    "bmma",
    "bmma_batched",
    "imma4",
    "imma8",
    "hmma",
]

#: bmma tile shape: m8 n8 k128 (CUDA ``wmma::experimental`` b1 shape).
BMMA_M, BMMA_N, BMMA_K = 8, 8, 128
#: 128 bits per row = 2 x uint64 words.
BMMA_WORDS = BMMA_K // 64

#: int4 primitive shape m8 n8 k32.
IMMA4_SHAPE = (8, 8, 32)
#: int8 primitive shape m16 n16 k16.
IMMA8_SHAPE = (16, 16, 16)
#: fp16 primitive shape m16 n16 k16.
HMMA_SHAPE = (16, 16, 16)

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1


def _check_acc_range(acc: np.ndarray) -> None:
    if acc.size and (acc.min() < _INT32_MIN or acc.max() > _INT32_MAX):
        raise OverflowError(
            "int32 accumulator overflow in MMA primitive: "
            f"range [{acc.min()}, {acc.max()}]"
        )


def bmma(
    frag_a: np.ndarray,
    frag_b: np.ndarray,
    frag_c: np.ndarray,
    op: TCOp = TCOp.XOR,
) -> np.ndarray:
    """One binary Tensor-Core MMA: ``C += popc(A row_op B)`` per (i, j).

    Parameters
    ----------
    frag_a:
        ``(8, 2)`` uint64 -- 8 rows of 128 packed bits (K-major).
    frag_b:
        ``(8, 2)`` uint64 -- 8 columns of B, also K-major rows (the
        hardware expects B in column-major K order, i.e. row i of the
        fragment is column i of the logical matrix).
    frag_c:
        ``(8, 8)`` int32 accumulator, updated in place and returned.
    op:
        ``TCOp.XOR`` (Turing+) or ``TCOp.AND`` (Ampere+).

    Returns
    -------
    np.ndarray
        The updated ``frag_c``.
    """
    frag_a = np.asarray(frag_a)
    frag_b = np.asarray(frag_b)
    if frag_a.shape != (BMMA_M, BMMA_WORDS) or frag_a.dtype != np.uint64:
        raise ValueError(
            f"frag_a must be uint64 ({BMMA_M}, {BMMA_WORDS}), got "
            f"{frag_a.dtype} {frag_a.shape}"
        )
    if frag_b.shape != (BMMA_N, BMMA_WORDS) or frag_b.dtype != np.uint64:
        raise ValueError(
            f"frag_b must be uint64 ({BMMA_N}, {BMMA_WORDS}), got "
            f"{frag_b.dtype} {frag_b.shape}"
        )
    if frag_c.shape != (BMMA_M, BMMA_N) or frag_c.dtype != np.int32:
        raise ValueError(
            f"frag_c must be int32 ({BMMA_M}, {BMMA_N}), got "
            f"{frag_c.dtype} {frag_c.shape}"
        )
    if not isinstance(op, TCOp):
        raise TypeError(f"op must be a TCOp, got {type(op).__name__}")

    a = frag_a[:, None, :]  # (8, 1, 2)
    b = frag_b[None, :, :]  # (1, 8, 2)
    combined = (a & b) if op is TCOp.AND else (a ^ b)
    update = popcount(combined).sum(axis=-1)
    acc = frag_c.astype(np.int64) + update
    _check_acc_range(acc)
    frag_c[...] = acc.astype(np.int32)
    return frag_c


#: Execution engines of :func:`bmma_batched`.
BMMA_BATCH_ENGINES = ("auto", "word", "fma")

#: ``rows_a * rows_b * nwords`` above which ``engine="auto"`` routes the
#: popcount reduction through the FMA pipes (dot-product identity) instead
#: of native word ops.  Below it, the unpack + matmul setup dominates.
BMMA_FMA_THRESHOLD = 1 << 16

#: Word-engine blocking: cap the broadcast scratch (rows_a-block x rows_b x
#: nwords uint64) so it stays cache-resident instead of round-tripping a
#: whole (rows_a, rows_b, nwords) intermediate through DRAM.
_WORD_BLOCK_ELEMS = 1 << 21


def _bmma_batched_word(
    a_words: np.ndarray, b_words: np.ndarray, op: TCOp
) -> np.ndarray:
    """Popcount-reduce GEMM in the word domain, blocked over A rows."""
    rows_a, nwords = a_words.shape
    rows_b = b_words.shape[0]
    out = np.empty((rows_a, rows_b), dtype=np.int64)
    block = max(1, _WORD_BLOCK_ELEMS // max(1, rows_b * nwords))
    bool_op = np.bitwise_and if op is TCOp.AND else np.bitwise_xor
    for r0 in range(0, rows_a, block):
        a_blk = a_words[r0: r0 + block, None, :]
        combined = bool_op(a_blk, b_words[None, :, :])
        # popcounts (<= 64) overwrite the scratch in place: one allocation
        # per block instead of two.
        np.bitwise_count(combined, out=combined)
        out[r0: r0 + block] = combined.sum(axis=-1, dtype=np.int64)
    return out


def _bmma_batched_fma(
    a_words: np.ndarray, b_words: np.ndarray, op: TCOp
) -> np.ndarray:
    """Popcount-reduce GEMM routed through FMA units.

    Uses the identity ``popc(a AND b) == <a_bits, b_bits>`` (and, for XOR,
    ``popc(a XOR b) == popc(a) + popc(b) - 2 * <a_bits, b_bits>``): the
    Boolean reduction becomes one dense matmul over the unpacked bit
    planes, which BLAS executes far faster than element-wise word ops --
    the emulated path outrunning the "native" one, exactly as in the
    Ootomo & Yokota emulation result.  Exact, because every partial sum is
    an integer bounded by K, far inside the float mantissa.
    """
    k_padded = a_words.shape[1] * WORD_BITS
    # float32 holds integers exactly up to 2**24; fall back to float64 for
    # (absurdly) long reductions so partial sums stay exact.
    dtype = np.float32 if k_padded < (1 << 24) else np.float64
    a_bits = unpack_bits(a_words, k_padded).astype(dtype)
    b_bits = unpack_bits(b_words, k_padded).astype(dtype)
    dots = (a_bits @ b_bits.T).astype(np.int64)
    if op is TCOp.AND:
        return dots
    pop_a = popcount(a_words).sum(axis=-1, dtype=np.int64)
    pop_b = popcount(b_words).sum(axis=-1, dtype=np.int64)
    return pop_a[:, None] + pop_b[None, :] - 2 * dots


def bmma_batched(
    a_words: np.ndarray,
    b_words: np.ndarray,
    op: TCOp = TCOp.XOR,
    *,
    engine: str = "auto",
    counters=None,
    backend: "backends.Backend | str | None" = None,
) -> np.ndarray:
    """Whole-matrix binary MMA: ``out[i, j] = sum_w popc(A[i, w] op B[j, w])``.

    The batched counterpart of :func:`bmma`: instead of one ``8 x 128``
    fragment pair per call, it consumes entire packed operand matrices and
    performs the full popcount-reduce GEMM in one vectorized invocation.
    Both operands are K-major packed rows (``uint64``, bit ``k`` of the
    logical row at bit ``k % 64`` of word ``k // 64``); zero padding in the
    final word is neutral for both ``AND`` and ``XOR`` provided the two
    operands are packed to the same word count, which the shape check
    enforces.

    Parameters
    ----------
    a_words:
        ``(rows_a, nwords)`` uint64 packed rows.
    b_words:
        ``(rows_b, nwords)`` uint64 packed rows.
    op:
        Boolean reduction operator (``TCOp.AND`` or ``TCOp.XOR``).
    engine:
        ``"word"`` (native word ops + ``np.bitwise_count``), ``"fma"``
        (dot-product identity on the unpacked planes, BLAS-backed), or
        ``"auto"`` (pick by problem size).  All engines return bit-identical
        results.
    counters:
        Optional :class:`~repro.tensorcore.counters.ExecutionCounters`;
        when given, the hardware-equivalent work is tallied: the number of
        ``8 x 8 x 128`` primitive invocations this call replaces and their
        1-bit MACs.
    backend:
        Kernel backend (:mod:`repro.core.backends`; ``None`` = active).
        With ``engine="auto"`` and a backend that provides the
        ``packed_gemm`` capability, the popcount-reduce GEMM runs on the
        compiled kernel (the fused weighted GEMM with a single unit
        weight, ``p = q = 1``) -- byte-identical to both numpy engines.
        An *explicit* ``engine`` string always gets that numpy engine.

    Returns
    -------
    np.ndarray
        ``(rows_a, rows_b)`` int64 popcount sums.
    """
    a_words = np.asarray(a_words)
    b_words = np.asarray(b_words)
    if a_words.ndim != 2 or a_words.dtype != np.uint64:
        raise ValueError(
            f"a_words must be 2-D uint64, got {a_words.dtype} "
            f"shape {a_words.shape}"
        )
    if b_words.ndim != 2 or b_words.dtype != np.uint64:
        raise ValueError(
            f"b_words must be 2-D uint64, got {b_words.dtype} "
            f"shape {b_words.shape}"
        )
    if a_words.shape[1] != b_words.shape[1]:
        raise ValueError(
            f"packed word count mismatch: {a_words.shape[1]} vs "
            f"{b_words.shape[1]}"
        )
    if not isinstance(op, TCOp):
        raise TypeError(f"op must be a TCOp, got {type(op).__name__}")
    if engine not in BMMA_BATCH_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {BMMA_BATCH_ENGINES}"
        )

    rows_a, nwords = a_words.shape
    rows_b = b_words.shape[0]
    fn = (
        backends.kernel("packed_gemm", backend) if engine == "auto" else None
    )
    if engine == "auto":
        engine = (
            "fma" if rows_a * rows_b * nwords >= BMMA_FMA_THRESHOLD
            else "word"
        )
    if rows_a == 0 or rows_b == 0 or nwords == 0:
        out = np.zeros((rows_a, rows_b), dtype=np.int64)
    elif fn is not None:
        out = fn(a_words, b_words, 1, rows_a, 1, rows_b, op is TCOp.AND)
        if counters is not None:
            counters.compiled_kernels += 1
    elif engine == "word":
        out = _bmma_batched_word(a_words, b_words, op)
    else:
        out = _bmma_batched_fma(a_words, b_words, op)

    if counters is not None:
        k_padded = nwords * WORD_BITS
        calls = (
            -(-rows_a // BMMA_M) * -(-rows_b // BMMA_N) * -(-k_padded // BMMA_K)
        )
        counters.bmma_calls += calls
        counters.tc_macs += calls * BMMA_M * BMMA_N * BMMA_K
    return out


def _integer_mma(
    frag_a: np.ndarray,
    frag_b: np.ndarray,
    frag_c: np.ndarray,
    shape: tuple[int, int, int],
    lo: int,
    hi: int,
    kind: str,
) -> np.ndarray:
    m, n, k = shape
    frag_a = np.asarray(frag_a)
    frag_b = np.asarray(frag_b)
    if frag_a.shape != (m, k):
        raise ValueError(f"{kind} frag_a must be ({m}, {k}), got {frag_a.shape}")
    if frag_b.shape != (n, k):
        raise ValueError(f"{kind} frag_b must be ({n}, {k}), got {frag_b.shape}")
    if frag_c.shape != (m, n) or frag_c.dtype != np.int32:
        raise ValueError(f"{kind} frag_c must be int32 ({m}, {n})")
    if frag_a.size and (frag_a.min() < lo or frag_a.max() > hi):
        raise ValueError(f"{kind} frag_a values outside [{lo}, {hi}]")
    if frag_b.size and (frag_b.min() < lo or frag_b.max() > hi):
        raise ValueError(f"{kind} frag_b values outside [{lo}, {hi}]")
    acc = frag_c.astype(np.int64) + frag_a.astype(np.int64) @ frag_b.astype(np.int64).T
    _check_acc_range(acc)
    frag_c[...] = acc.astype(np.int32)
    return frag_c


def imma4(frag_a, frag_b, frag_c) -> np.ndarray:
    """int4 MMA (m8 n8 k32): signed operands in [-8, 7], int32 accumulate."""
    return _integer_mma(frag_a, frag_b, frag_c, IMMA4_SHAPE, -8, 7, "imma4")


def imma8(frag_a, frag_b, frag_c) -> np.ndarray:
    """int8 MMA (m16 n16 k16): signed operands in [-128, 127], int32 accumulate."""
    return _integer_mma(frag_a, frag_b, frag_c, IMMA8_SHAPE, -128, 127, "imma8")


def hmma(frag_a, frag_b, frag_c) -> np.ndarray:
    """fp16 MMA (m16 n16 k16) with fp32 accumulation.

    Operands are rounded to fp16 on load (fragment precision), products
    accumulate in fp32 -- the numerically relevant property of the hardware.
    """
    m, n, k = HMMA_SHAPE
    frag_a = np.asarray(frag_a, dtype=np.float16)
    frag_b = np.asarray(frag_b, dtype=np.float16)
    if frag_a.shape != (m, k) or frag_b.shape != (n, k):
        raise ValueError(
            f"hmma fragments must be ({m},{k}) and ({n},{k}); got "
            f"{frag_a.shape} and {frag_b.shape}"
        )
    if frag_c.shape != (m, n) or frag_c.dtype != np.float32:
        raise ValueError(f"hmma frag_c must be float32 ({m}, {n})")
    frag_c += (frag_a.astype(np.float32) @ frag_b.astype(np.float32).T)
    return frag_c
