"""Execution counters: the measured quantities behind the performance model.

Every simulated kernel (APMM, APConv, baselines) tallies its work into an
:class:`ExecutionCounters` instance.  The analytical latency model consumes
*only* these counts plus the tiling configuration -- keeping a clean
separation between "what work was done" (observable, testable against the
explicit tile-level simulation) and "how long the hardware would take"
(calibrated model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["ExecutionCounters"]


@dataclass
class ExecutionCounters:
    """Tallies of simulated-GPU work, all in scalar units.

    Attributes
    ----------
    bmma_calls:
        Number of 8x8x128 (or equivalent MMA-shape) primitive invocations.
    tc_macs:
        Multiply-accumulate operations executed on Tensor Cores, in units of
        the primitive's native element type (1-bit MACs for bmma).
    cuda_ops:
        Scalar CUDA-core operations (bit decomposition shifts, epilogue
        arithmetic, popcount corrections).
    global_bytes_read / global_bytes_written:
        DRAM traffic.
    smem_bytes_read / smem_bytes_written:
        Shared-memory traffic.
    frag_bytes_peak:
        Peak register-fragment footprint per block.
    blocks:
        Thread blocks launched (the paper's TLP, eq. 3).
    kernel_launches:
        Number of distinct kernel launches (fusion reduces this).
    compiled_kernels:
        Hot-loop invocations that executed on a compiled kernel backend
        (:mod:`repro.core.backends`) instead of the numpy path -- zero
        on the numpy backend by construction, so tests can assert which
        backend actually ran.
    """

    bmma_calls: int = 0
    tc_macs: int = 0
    cuda_ops: int = 0
    global_bytes_read: int = 0
    global_bytes_written: int = 0
    smem_bytes_read: int = 0
    smem_bytes_written: int = 0
    frag_bytes_peak: int = 0
    blocks: int = 0
    kernel_launches: int = 0
    compiled_kernels: int = 0

    def merge(self, other: "ExecutionCounters") -> "ExecutionCounters":
        """Accumulate another counter set into this one (in place).

        ``frag_bytes_peak`` merges with ``max`` (it is a high-water mark);
        everything else adds.
        """
        for f in fields(self):
            if f.name == "frag_bytes_peak":
                self.frag_bytes_peak = max(self.frag_bytes_peak, other.frag_bytes_peak)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "ExecutionCounters":
        return ExecutionCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def as_dict(self) -> dict[str, int]:
        """Field-name -> tally mapping, in declaration order.

        The one serialization shape for counters everywhere: plan
        records, span attributes, and test assertions all go through
        here instead of poking dataclass fields ad hoc.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, baseline: "ExecutionCounters") -> "ExecutionCounters":
        """Work done since ``baseline`` (counter-wise ``self - baseline``).

        The inverse of :meth:`merge` for accumulating counters; the
        non-additive ``frag_bytes_peak`` high-water mark has no
        meaningful difference, so the delta keeps ``self``'s peak.
        Raises ``ValueError`` when ``baseline`` is ahead of ``self`` on
        any additive counter (a delta of negative work is always a
        caller bug, not a measurement).
        """
        out = ExecutionCounters()
        for f in fields(self):
            if f.name == "frag_bytes_peak":
                out.frag_bytes_peak = self.frag_bytes_peak
                continue
            diff = getattr(self, f.name) - getattr(baseline, f.name)
            if diff < 0:
                raise ValueError(
                    f"counter {f.name} went backwards: baseline "
                    f"{getattr(baseline, f.name)} > current "
                    f"{getattr(self, f.name)}"
                )
            setattr(out, f.name, diff)
        return out

    @property
    def global_bytes(self) -> int:
        """Total DRAM traffic."""
        return self.global_bytes_read + self.global_bytes_written

    @property
    def smem_bytes(self) -> int:
        """Total shared-memory traffic."""
        return self.smem_bytes_read + self.smem_bytes_written

    def validate(self) -> None:
        """All tallies must be non-negative."""
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"counter {f.name} is negative")
