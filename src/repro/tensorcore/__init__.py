"""Functional simulator of Ampere Tensor-Core primitives and memory system."""

from .bmma import (
    BMMA_BATCH_ENGINES,
    BMMA_FMA_THRESHOLD,
    BMMA_K,
    BMMA_M,
    BMMA_N,
    BMMA_WORDS,
    HMMA_SHAPE,
    IMMA4_SHAPE,
    IMMA8_SHAPE,
    bmma,
    bmma_batched,
    hmma,
    imma4,
    imma8,
)
from .counters import ExecutionCounters
from .device import A100, DEVICES, RTX3090, DeviceSpec, get_device
from .fragment import FragmentFile
from .smem import SharedMemory, bank_conflict_factor

__all__ = [
    "BMMA_M",
    "BMMA_N",
    "BMMA_K",
    "BMMA_WORDS",
    "IMMA4_SHAPE",
    "IMMA8_SHAPE",
    "HMMA_SHAPE",
    "bmma",
    "bmma_batched",
    "BMMA_BATCH_ENGINES",
    "BMMA_FMA_THRESHOLD",
    "imma4",
    "imma8",
    "hmma",
    "ExecutionCounters",
    "DeviceSpec",
    "RTX3090",
    "A100",
    "DEVICES",
    "get_device",
    "FragmentFile",
    "SharedMemory",
    "bank_conflict_factor",
]
