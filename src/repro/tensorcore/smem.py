"""Shared-memory model for one simulated thread block.

Backs the *shared memory caching* half of the paper's batch-based double
caching (section 4.1(a)): all warps of a block collaboratively stage weight
and feature tiles in shared memory, then each warp fetches its sub-tiles
from there.  The model enforces the per-block capacity (a real launch
failure mode) and tallies read/write traffic for the performance model.

A simple 32-bank conflict estimator is included: given an access stride in
4-byte words it reports the serialization factor a warp-wide access would
suffer.  The channel-major layout work (paper section 4.2a) is what keeps
this factor at 1 for APConv.
"""

from __future__ import annotations

import math

import numpy as np

from .counters import ExecutionCounters

__all__ = ["SharedMemory", "bank_conflict_factor"]

#: Number of 4-byte-wide shared-memory banks on all modeled devices.
NUM_BANKS = 32


def bank_conflict_factor(stride_words: int) -> int:
    """Serialization factor of a 32-lane access with the given word stride.

    A stride of ``s`` words hits ``NUM_BANKS / gcd(s, NUM_BANKS)`` distinct
    banks, so ``gcd(s, NUM_BANKS)`` lanes collide per bank.  Stride 0
    (broadcast) is conflict-free on modern hardware.
    """
    if stride_words < 0:
        raise ValueError(f"stride must be >= 0, got {stride_words}")
    if stride_words == 0:
        return 1
    return math.gcd(stride_words, NUM_BANKS)


class SharedMemory:
    """Capacity-checked, traffic-counted shared memory of one block."""

    def __init__(
        self,
        capacity_bytes: int,
        counters: ExecutionCounters | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.counters = counters if counters is not None else ExecutionCounters()
        self._buffers: dict[str, np.ndarray] = {}

    @property
    def used_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def allocate(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Reserve a named buffer; raises MemoryError beyond capacity."""
        if name in self._buffers:
            raise KeyError(f"shared buffer {name!r} already allocated")
        arr = np.zeros(shape, dtype=dtype)
        if self.used_bytes + arr.nbytes > self.capacity_bytes:
            raise MemoryError(
                f"shared memory overflow: {name!r} ({arr.nbytes} B) would "
                f"exceed {self.capacity_bytes} B (used {self.used_bytes} B)"
            )
        self._buffers[name] = arr
        return arr

    def free(self, name: str) -> None:
        try:
            del self._buffers[name]
        except KeyError as exc:
            raise KeyError(f"shared buffer {name!r} is not allocated") from exc

    def write(self, name: str, data: np.ndarray) -> None:
        """Store data into a buffer, counting the traffic."""
        buf = self._buffers[name]
        if buf.shape != data.shape:
            raise ValueError(
                f"shape mismatch writing {name!r}: {data.shape} vs {buf.shape}"
            )
        buf[...] = data
        self.counters.smem_bytes_written += buf.nbytes

    def read(self, name: str) -> np.ndarray:
        """Fetch a buffer's contents (copy), counting the traffic."""
        buf = self._buffers[name]
        self.counters.smem_bytes_read += buf.nbytes
        return buf.copy()

    def view(self, name: str) -> np.ndarray:
        """Zero-cost view for assertions/tests (no traffic recorded)."""
        return self._buffers[name]

    def reset(self) -> None:
        self._buffers.clear()
