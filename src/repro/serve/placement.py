"""Metrics-driven placement: replication and pipeline-parallel sharding.

The server fans requests out across (backend, device) workers, but until
this module nothing decided *which* models live on *which* workers:
every worker served every model.  Placement closes that gap with two
mechanisms, both priced through the same analytical cost stack the
batcher uses:

**Replication.**  Each model starts on one worker.  At every rebalance
epoch the :class:`PlacementController` compares the model's windowed
arrival rate (from :meth:`~repro.serve.metrics.ServerMetrics.arrival_stats`)
against the modeled service rate of one replica -- the plan-cache-priced
latency of the policy's reference batch -- and grows or shrinks the
replica set so that ``arrival_rate <= target_utilization * service_rate
* replicas``.  Hot models gain workers; cold models keep one.

**Pipeline-parallel sharding.**  A model too large or slow for one
device is split into contiguous stages along its top-level layer list.
The split point is chosen by pricing the model's compiled plan per fused
group (:mod:`repro.perf.cost` via the plan cache), attributing each
group to the top-level layer that anchors it, and balanced-partitioning
those per-layer costs so the slowest stage is as fast as possible.  Each
stage becomes its own submodel (a :class:`StagePlan`) compiled through
the normal :meth:`~repro.serve.plan_cache.PlanCache.ensure_async` path
and placed on a distinct worker; the server's worker loops hand batches
from stage to stage.  Because every stage applies the *same layer
objects in the same order* as the unsharded model, the pipeline's
functional output is byte-identical to the unsharded engine's
(:func:`run_pipeline` is the reference implementation the tests assert
with).

Placements are immutable snapshots (:class:`Placement`); the controller
swaps them atomically under the server's condition lock, strictly
between batches, so a rebalance can never drop or reorder an in-flight
request -- queued requests simply route to the new owner set, and
dispatched pipeline batches carry the stage assignment they started
with.  Every change is recorded as a :class:`PlacementDecision` and
pushed to registered observers, which is what makes the policy
deterministic and assertable on the simulated clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..nn.module import Module, Sequential
from ..obs import NULL_TRACER

__all__ = [
    "StagePlan",
    "ModelPlacement",
    "Placement",
    "PlacementDecision",
    "PlacementPolicy",
    "PlacementController",
    "pipeline_units",
    "partition_units",
    "pipeline_stages",
    "run_pipeline",
]


# ----------------------------------------------------------------------
# placement snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage: a contiguous slice of a model, pinned to a worker.

    ``submodel`` wraps the *same layer objects* as the parent model (a
    slice of its top-level layer list), so running the stages in order
    is the exact computation of the unsharded model.  ``input_shape``
    is the per-sample shape entering this stage (batch dim excluded),
    and ``modeled_us`` is the partition-time cost-model estimate used to
    balance the split (serving-time pricing goes through the plan
    cache, per batch size).
    """

    model: str
    index: int
    num_stages: int
    submodel: Sequential
    input_shape: tuple[int, ...]
    worker: str
    modeled_us: float

    @property
    def name(self) -> str:
        return self.submodel.name


@dataclass(frozen=True)
class ModelPlacement:
    """Where one model runs: a replica set, or a pipeline of stages.

    For a replicated (or single-owner) model, ``replicas`` names every
    worker whose loop may dispatch it and ``stages`` is ``None``.  For a
    sharded model, ``stages`` holds one :class:`StagePlan` per pipeline
    stage; only the stage-0 owner dispatches from the model's queue, and
    downstream stages receive handoff jobs.
    """

    model: str
    replicas: tuple[str, ...]
    stages: tuple[StagePlan, ...] | None = None

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError(f"model {self.model!r} placed on no worker")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(
                f"duplicate replica workers for {self.model!r}: "
                f"{self.replicas}"
            )
        if self.stages is not None:
            workers = [s.worker for s in self.stages]
            if len(set(workers)) != len(workers):
                raise ValueError(
                    f"pipeline stages of {self.model!r} must land on "
                    f"distinct workers, got {workers}"
                )

    def serves(self, worker: str) -> bool:
        """May ``worker``'s loop dispatch this model from its queue?"""
        if self.stages is not None:
            return self.stages[0].worker == worker
        return worker in self.replicas


@dataclass(frozen=True)
class Placement:
    """Immutable assignment of every model to its workers, one epoch."""

    epoch: int
    placements: Mapping[str, ModelPlacement]

    def serves(self, worker: str, model: str) -> bool:
        return self.placements[model].serves(worker)

    def replicas_of(self, model: str) -> tuple[str, ...]:
        return self.placements[model].replicas

    def stages_of(self, model: str) -> tuple[StagePlan, ...] | None:
        return self.placements[model].stages

    def replica_counts(self) -> dict[str, int]:
        return {
            name: len(mp.replicas) for name, mp in self.placements.items()
        }

    def worker_load(self) -> dict[str, int]:
        """Assignments per worker (each replica or stage counts one)."""
        load: dict[str, int] = {}
        for mp in self.placements.values():
            if mp.stages is not None:
                for s in mp.stages:
                    load[s.worker] = load.get(s.worker, 0) + 1
            else:
                for w in mp.replicas:
                    load[w] = load.get(w, 0) + 1
        return load


@dataclass(frozen=True)
class PlacementDecision:
    """One recorded placement change (the observer/audit record)."""

    epoch: int
    sim_time_us: float
    model: str
    action: str  #: "replicate" | "shrink" | "shard"
    workers: tuple[str, ...]  #: owner set after the action
    arrival_rate_rps: float = 0.0
    service_rate_rps: float = 0.0
    target_replicas: int = 0

    def key(self) -> tuple:
        """Comparable identity (reproducibility assertions)."""
        return (self.epoch, self.model, self.action, self.workers,
                self.target_replicas)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementPolicy:
    """Knobs of the placement layer (all rates/times are simulated).

    ``rebalance_every_us``
        Epoch length: the controller re-evaluates replica counts at most
        once per this many simulated microseconds.
    ``window_us``
        Arrival-rate window: a model's demand is the request count whose
        arrival stamps fall in the trailing window, over the window.
    ``target_utilization``
        Replicas are sized so each runs at or below this fraction of its
        modeled service rate; lower values replicate earlier.
    ``service_batch``
        Reference batch whose plan-cache-priced latency defines one
        replica's service rate (``batch / latency``).
    ``max_replicas``
        Cap on replicas per model (``None`` = the worker count).
    ``min_requests``
        Models with fewer windowed arrivals than this hold their current
        placement -- noise suppression for the rate estimate.
    ``shrink``
        Whether replica sets may contract when demand drops.
    ``shard``
        ``(model, num_stages)`` pairs to pipeline-shard at start; each
        stage lands on a distinct worker and the split is balanced by
        the cost model.  Sharded models never replicate.
    ``partition_batch``
        Batch size of the full-model plan whose per-group costs drive
        the balanced split.
    """

    rebalance_every_us: float = 50_000.0
    window_us: float = 100_000.0
    target_utilization: float = 0.75
    service_batch: int = 8
    max_replicas: int | None = None
    min_requests: int = 4
    shrink: bool = True
    shard: tuple[tuple[str, int], ...] = ()
    partition_batch: int = 8

    def __post_init__(self) -> None:
        if self.rebalance_every_us <= 0:
            raise ValueError(
                f"rebalance_every_us must be positive, got "
                f"{self.rebalance_every_us}"
            )
        if self.window_us <= 0:
            raise ValueError(
                f"window_us must be positive, got {self.window_us}"
            )
        if not 0 < self.target_utilization <= 1:
            raise ValueError(
                f"target_utilization must be in (0, 1], got "
                f"{self.target_utilization}"
            )
        if self.service_batch < 1 or self.partition_batch < 1:
            raise ValueError("service/partition batches must be >= 1")
        if self.max_replicas is not None and self.max_replicas < 1:
            raise ValueError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )
        if self.min_requests < 1:
            raise ValueError(
                f"min_requests must be >= 1, got {self.min_requests}"
            )
        for model, num_stages in self.shard:
            if num_stages < 2:
                raise ValueError(
                    f"sharding {model!r} needs >= 2 stages, got {num_stages}"
                )

    @classmethod
    def sharded(
        cls, shard: Mapping[str, int] | Iterable[tuple[str, int]], **kwargs
    ) -> "PlacementPolicy":
        """Convenience constructor from a ``{model: num_stages}`` spec."""
        items = shard.items() if isinstance(shard, Mapping) else shard
        return cls(shard=tuple(sorted((m, int(k)) for m, k in items)),
                   **kwargs)

    def target_replicas(
        self, arrival_rate_rps: float, service_rate_rps: float,
        num_workers: int,
    ) -> int:
        """Replica count sizing one model's demand at the utilization cap."""
        cap = num_workers
        if self.max_replicas is not None:
            cap = min(cap, self.max_replicas)
        if service_rate_rps <= 0:
            return 1
        need = math.ceil(
            arrival_rate_rps / (self.target_utilization * service_rate_rps)
        )
        return max(1, min(cap, need))


# ----------------------------------------------------------------------
# pipeline partitioning
# ----------------------------------------------------------------------
def _module_ids(layer: Module) -> set[int]:
    """ids of ``layer`` and every Module reachable inside it."""
    ids = {id(layer)}
    for value in vars(layer).values():
        if isinstance(value, Module):
            ids |= _module_ids(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    ids |= _module_ids(item)
    return ids


def pipeline_units(
    model: Sequential, plan, latency_model
) -> list[float]:
    """Per-top-level-layer modeled cost, from a compiled plan's groups.

    Fused groups are attributed to the top-level layer containing their
    anchor (the main GEMM layer, or the first epilogue layer for
    GEMM-less groups); a group fusing across a layer boundary -- e.g. a
    quantize marker riding in the previous block's epilogue -- is billed
    to the layer that anchors it.  Units are the only legal split
    points, so a residual block is always scheduled whole.
    """
    owners: list[set[int]] = [_module_ids(layer) for layer in model.layers]
    unit_us = [0.0] * len(model.layers)
    # group order mirrors the layer walk; attribute each priced group
    from ..nn.fusion_pass import fuse_graph

    groups = fuse_graph(model)
    if len(groups) != len(plan.groups):
        raise ValueError(
            f"plan has {len(plan.groups)} groups but the model fuses into "
            f"{len(groups)}; was the plan compiled from this model?"
        )
    for group, planned in zip(groups, plan.groups):
        anchor = group.main if group.main is not None else group.epilogue[0]
        total = sum(latency_model.latency_us(c) for c in planned.costs)
        for i, ids in enumerate(owners):
            if id(anchor) in ids:
                unit_us[i] += total
                break
        else:
            raise ValueError(
                f"fused group {group.name!r} anchors to no top-level layer "
                f"of {model.name!r}"
            )
    return unit_us


def partition_units(unit_us: Sequence[float], num_stages: int) -> list[int]:
    """Balanced contiguous partition: boundaries minimizing the max stage.

    Returns the ``num_stages - 1`` split indices (a stage ``s`` covers
    units ``[bounds[s-1], bounds[s])``).  Classic interval-partition DP;
    deterministic, preferring earlier splits on ties.
    """
    n = len(unit_us)
    if not 1 <= num_stages <= n:
        raise ValueError(
            f"cannot split {n} units into {num_stages} stages"
        )
    prefix = [0.0]
    for u in unit_us:
        prefix.append(prefix[-1] + u)

    def span(a: int, b: int) -> float:
        return prefix[b] - prefix[a]

    INF = float("inf")
    # best[k][i]: minimal max-stage cost splitting units[:i] into k stages
    best = [[INF] * (n + 1) for _ in range(num_stages + 1)]
    cut = [[0] * (n + 1) for _ in range(num_stages + 1)]
    best[0][0] = 0.0
    for k in range(1, num_stages + 1):
        for i in range(k, n + 1):
            for j in range(k - 1, i):
                cost = max(best[k - 1][j], span(j, i))
                if cost < best[k][i]:
                    best[k][i] = cost
                    cut[k][i] = j
    bounds: list[int] = []
    i = n
    for k in range(num_stages, 1, -1):
        i = cut[k][i]
        bounds.append(i)
    bounds.reverse()
    return bounds


def pipeline_stages(
    model_name: str,
    model: Sequential,
    input_shape: tuple[int, ...],
    num_stages: int,
    plan,
    latency_model,
) -> list[StagePlan]:
    """Split a model into cost-balanced pipeline stages (workers unset).

    ``plan`` is the unsharded :class:`~repro.nn.engine.CompiledPlan`
    whose priced groups drive the balance; the returned stages carry
    empty ``worker`` fields for the controller to fill.
    """
    unit_us = pipeline_units(model, plan, latency_model)
    bounds = partition_units(unit_us, num_stages)
    edges = [0] + bounds + [len(model.layers)]
    stages: list[StagePlan] = []
    shape: tuple[int, ...] = (1,) + tuple(input_shape)
    for idx in range(num_stages):
        a, b = edges[idx], edges[idx + 1]
        sub = Sequential(
            model.layers[a:b],
            name=f"{model.name}#stage{idx + 1}of{num_stages}",
        )
        stages.append(
            StagePlan(
                model=model_name,
                index=idx,
                num_stages=num_stages,
                submodel=sub,
                input_shape=tuple(shape[1:]),
                worker="",
                modeled_us=sum(unit_us[a:b]),
            )
        )
        shape = sub.output_shape(shape)
    return stages


def run_pipeline(
    stages: Sequence[StagePlan], x: np.ndarray
) -> np.ndarray:
    """Functional reference: feed ``x`` through the stages in order.

    Because stages are contiguous slices of the parent model's layer
    list, this is the same computation as the unsharded forward -- the
    byte-identity the sharding tests assert.
    """
    for stage in sorted(stages, key=lambda s: s.index):
        x = stage.submodel.forward(x)
    return x


# ----------------------------------------------------------------------
# controller
# ----------------------------------------------------------------------
class PlacementController:
    """Owns the live :class:`Placement` and evolves it at epoch boundaries.

    The controller is deliberately pure bookkeeping: the server feeds it
    arrival and service rates (already simulated-clock quantities) and
    it returns new placements; it never touches queues or engines, which
    is what lets a rebalance be an atomic snapshot swap under the
    server's lock.  ``observers`` are called with every
    :class:`PlacementDecision`; ``decisions`` and ``history`` keep the
    full audit trail for the tests and the placement experiment.
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        model_names: Iterable[str],
        worker_names: Sequence[str],
    ) -> None:
        self.policy = policy
        self.workers = tuple(worker_names)
        if not self.workers:
            raise ValueError("placement needs at least one worker")
        models = sorted(model_names)
        sharded = dict(policy.shard)
        unknown = sorted(set(sharded) - set(models))
        if unknown:
            raise ValueError(
                f"shard spec names unknown models: {unknown}"
            )
        for name, k in sharded.items():
            if k > len(self.workers):
                raise ValueError(
                    f"cannot shard {name!r} into {k} stages on "
                    f"{len(self.workers)} workers (stages need distinct "
                    f"workers)"
                )
        self.decisions: list[PlacementDecision] = []
        self.observers: list[Callable[[PlacementDecision], None]] = []
        #: Observability hook (the server installs its tracer here):
        #: each committed decision becomes an instant event on the
        #: simulated clock, so rebalances show up as ticks between the
        #: batches they re-routed.
        self.tracer = NULL_TRACER
        self.history: list[Placement] = []
        self.evaluations = 0
        self._next_rebalance_us = policy.rebalance_every_us
        # Deterministic initial spread: sorted models round-robin onto
        # the least-loaded worker (spec order breaking ties).
        load = {w: 0 for w in self.workers}
        placements: dict[str, ModelPlacement] = {}
        for name in models:
            worker = min(
                self.workers, key=lambda w: (load[w], self.workers.index(w))
            )
            load[worker] += 1
            placements[name] = ModelPlacement(model=name, replicas=(worker,))
        self.placement = Placement(epoch=0, placements=placements)
        self.history.append(self.placement)

    # ------------------------------------------------------------------
    def _record(self, decision: PlacementDecision) -> None:
        self.decisions.append(decision)
        if self.tracer.enabled:
            self.tracer.event(
                f"placement:{decision.action}:{decision.model}",
                "placement", decision.sim_time_us,
                lane="placement",
                model=decision.model, action=decision.action,
                epoch=decision.epoch, workers=list(decision.workers),
                target_replicas=decision.target_replicas,
                arrival_rate_rps=decision.arrival_rate_rps,
                service_rate_rps=decision.service_rate_rps,
            )
        for observer in self.observers:
            observer(decision)

    def _least_loaded(
        self, load: dict[str, int], exclude: Iterable[str] = ()
    ) -> str | None:
        candidates = [w for w in self.workers if w not in set(exclude)]
        if not candidates:
            return None
        return min(candidates, key=lambda w: (load.get(w, 0),
                                              self.workers.index(w)))

    def install_stages(
        self, model: str, stages: Sequence[StagePlan], sim_time_us: float = 0.0
    ) -> tuple[StagePlan, ...]:
        """Pin a freshly partitioned pipeline onto distinct workers.

        Called by the server at start, after the cost-model split is
        known.  Stages land on the least-loaded distinct workers; the
        stage-0 owner becomes the model's dispatch entry.
        """
        load = self.placement.worker_load()
        # the model's provisional single-replica slot is being replaced
        for w in self.placement.replicas_of(model):
            load[w] = load.get(w, 0) - 1
        assigned: list[StagePlan] = []
        taken: list[str] = []
        for stage in sorted(stages, key=lambda s: s.index):
            worker = self._least_loaded(load, exclude=taken)
            if worker is None:
                raise ValueError(
                    f"not enough distinct workers for {model!r}'s "
                    f"{len(stages)} stages"
                )
            taken.append(worker)
            load[worker] = load.get(worker, 0) + 1
            assigned.append(replace(stage, worker=worker))
        pinned = tuple(assigned)
        placements = dict(self.placement.placements)
        placements[model] = ModelPlacement(
            model=model, replicas=(pinned[0].worker,), stages=pinned
        )
        self.placement = Placement(
            epoch=self.placement.epoch, placements=placements
        )
        self.history.append(self.placement)
        self._record(
            PlacementDecision(
                epoch=self.placement.epoch,
                sim_time_us=sim_time_us,
                model=model,
                action="shard",
                workers=tuple(s.worker for s in pinned),
                target_replicas=len(pinned),
            )
        )
        return pinned

    # ------------------------------------------------------------------
    def due(self, sim_now_us: float) -> bool:
        """Has the next rebalance epoch arrived on the simulated clock?"""
        return sim_now_us >= self._next_rebalance_us

    def rebalance(
        self,
        sim_now_us: float,
        arrival_rates_rps: Mapping[str, float],
        service_rates_rps: Mapping[str, float | None],
    ) -> tuple[int, int] | None:
        """Re-size replica sets; returns ``(adds, removes)`` on a swap.

        ``arrival_rates_rps`` holds only models whose windowed sample is
        trustworthy (the server applies ``min_requests``);
        ``service_rates_rps`` may map a model to ``None`` when its
        reference plan is not warm yet -- such models hold their current
        placement this epoch.  Sharded models never change.
        """
        every = self.policy.rebalance_every_us
        self._next_rebalance_us = (
            math.floor(sim_now_us / every) + 1
        ) * every
        self.evaluations += 1
        placements = dict(self.placement.placements)
        epoch = self.placement.epoch + 1
        adds = removes = 0
        pending: list[PlacementDecision] = []
        load = self.placement.worker_load()
        for model in sorted(placements):
            mp = placements[model]
            if mp.stages is not None:
                continue
            if model not in arrival_rates_rps:
                continue
            service = service_rates_rps.get(model)
            if service is None or service <= 0:
                continue
            rate = arrival_rates_rps[model]
            target = self.policy.target_replicas(
                rate, service, len(self.workers)
            )
            current = len(mp.replicas)
            if target > current:
                replicas = list(mp.replicas)
                for _ in range(target - current):
                    worker = self._least_loaded(load, exclude=replicas)
                    if worker is None:
                        break
                    replicas.append(worker)
                    load[worker] = load.get(worker, 0) + 1
                    adds += 1
                placements[model] = replace(mp, replicas=tuple(replicas))
                pending.append(
                    PlacementDecision(
                        epoch=epoch, sim_time_us=sim_now_us, model=model,
                        action="replicate", workers=tuple(replicas),
                        arrival_rate_rps=rate, service_rate_rps=service,
                        target_replicas=target,
                    )
                )
            elif target < current and self.policy.shrink:
                keep = mp.replicas[:target]
                for worker in mp.replicas[target:]:
                    load[worker] = load.get(worker, 0) - 1
                    removes += 1
                placements[model] = replace(mp, replicas=keep)
                pending.append(
                    PlacementDecision(
                        epoch=epoch, sim_time_us=sim_now_us, model=model,
                        action="shrink", workers=keep,
                        arrival_rate_rps=rate, service_rate_rps=service,
                        target_replicas=target,
                    )
                )
        if not pending:
            return None
        self.placement = Placement(epoch=epoch, placements=placements)
        self.history.append(self.placement)
        for decision in pending:
            self._record(decision)
        return adds, removes
