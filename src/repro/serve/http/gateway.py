"""HTTP/1.1 + WebSocket ingress over a serving backend.

:class:`HttpGateway` is the network edge of the serving stack: a
stdlib-asyncio front end that turns real sockets into
:meth:`~repro.serve.server.InferenceServer.submit` calls (or
:meth:`~repro.serve.cluster.ClusterCoordinator.submit` -- the backend
is duck-typed on ``submit`` / ``metrics`` / ``draining`` /
``begin_drain`` / ``unit_price_us``).

Endpoints
---------
``POST /v1/infer``
    One JSON submission (``{"model": ..., "tag"?: ..., "arrival_us"?:
    ...}``) -> one JSON response carrying the result digest, pricing
    (modeled batch-1 unit price + the wXaY pair actually served) and
    deadline/precision metadata.  400 on malformed JSON, 404 on an
    unknown model, 429 on admission shed, 503 while draining.
``GET /v1/metrics``
    ``ServerMetrics.snapshot()`` as canonical JSON.
``GET /healthz``
    ``{"status": "ok"}`` -- or ``"draining"`` once shutdown began.
``GET /v1/stream`` (WebSocket upgrade)
    Submit many, stream results as they complete.  Each text frame in
    is one submission object; each text frame out is one completed
    result (same shape as ``/v1/infer`` responses, plus the echoed
    ``tag``/``echo`` fields).  Errors come back as ``{"tag": ...,
    "error": {...}}`` messages on the same stream.

Backpressure
------------
Every WS client gets a *bounded* send queue (``send_queue_limit``
frames).  When a slow reader lets it fill, the gateway stops reading
that client's socket (the reader coroutine parks on the queue) until
the sender drains below the bound -- deferral, not unbounded
buffering, so one stuck client costs O(limit) memory and stalls nobody
else.  ``ws_backpressure_waits`` / ``ws_send_queue_high_water`` in the
metrics snapshot make the behaviour observable (and testable).

Clocks
------
``clock="sim"`` (default) leaves arrival stamps to the backend's
discrete-event clock -- the mode every scheduler/placement test runs
in.  ``clock="wall"`` stamps arrivals with real elapsed microseconds
since gateway start, for soak tests and demos against wall time.  The
gateway's own bookkeeping (tracing spans, drain timeouts) is always
wall-clock: sockets are process property, not model property, which is
why this package is a sanctioned zone for the analysis wall-clock rule.

Digests
-------
:func:`result_digest` condenses a completed request into a SHA-256 over
canonical JSON of its *deterministic* coordinates (model, served wXaY
pair, modeled batch-1 unit price, client tag).  Wall-time-dependent
quantities (batch coalescing, queue wait) are deliberately excluded, so
a gateway response and a direct in-process ``submit`` for the same
logical request produce byte-identical digests -- the loopback suite's
cross-transport invariant.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from typing import Any

from ...obs import NULL_TRACER, Tracer
from ..ipc import canonical_json
from ..policies import AdmissionRejected
from ..server import ServerDraining
from .protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    HttpRequest,
    ProtocolError,
    WSDecoder,
    WSMessageAssembler,
    encode_response,
    encode_ws_frame,
    read_http_request,
    ws_accept_key,
)

__all__ = [
    "DEFAULT_SEND_QUEUE_LIMIT",
    "HttpGateway",
    "result_digest",
]

#: Default per-client bound on queued-but-unsent WS result frames.
DEFAULT_SEND_QUEUE_LIMIT = 32

#: Grace period ``stop()`` grants in-flight work before force-closing.
DEFAULT_STOP_TIMEOUT = 30.0


def result_digest(
    model: str, pair: str, unit_us: float, tag: str
) -> str:
    """SHA-256 hex digest of one result's deterministic coordinates.

    Covers exactly the quantities that are pure functions of (model,
    backend, device, precision, calibration, client tag) -- never
    wall-time-dependent batching/queueing fields -- so the same logical
    request digests identically whether served over HTTP, WebSocket, or
    a direct in-process ``submit``.
    """
    payload = canonical_json(
        {"model": model, "pair": pair, "tag": tag, "unit_us": unit_us}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _json_safe(value: float) -> float | None:
    """Canonical JSON refuses NaN/inf; map unset deadlines to null."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


class _BoundedSendQueue:
    """FIFO of encoded frames with a hard bound and wait-based put.

    ``put`` parks when the queue is at its bound (that is the
    backpressure: the caller -- the client's reader coroutine or a
    completion task -- stops making progress until the sender drains).
    ``metrics`` receives the high-water mark and each wait.
    """

    def __init__(self, limit: int, metrics) -> None:
        if limit < 1:
            raise ValueError(f"send_queue_limit must be >= 1, got {limit}")
        self.limit = limit
        self._metrics = metrics
        self._frames: list[bytes] = []
        self._cond = asyncio.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def full(self) -> bool:
        return len(self._frames) >= self.limit

    async def put(self, frame: bytes) -> None:
        async with self._cond:
            if self.full and not self._closed:
                self._metrics.record_ws_backpressure_wait()
                await self._cond.wait_for(
                    lambda: not self.full or self._closed
                )
            if self._closed:
                return
            self._frames.append(frame)
            self._metrics.record_ws_send_queue_depth(len(self._frames))
            self._cond.notify_all()

    async def wait_not_full(self) -> None:
        """Park until there is room -- the reader's deferral point."""
        async with self._cond:
            if self.full and not self._closed:
                self._metrics.record_ws_backpressure_wait()
                await self._cond.wait_for(
                    lambda: not self.full or self._closed
                )

    async def get(self) -> bytes | None:
        """Next frame to send; ``None`` once closed and empty."""
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._frames or self._closed
            )
            if not self._frames:
                return None
            frame = self._frames.pop(0)
            self._cond.notify_all()
            return frame

    async def wait_empty(self) -> None:
        async with self._cond:
            await self._cond.wait_for(lambda: not self._frames)

    async def shutdown(self) -> None:
        """Unblock every waiter; pending frames still get sent."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()


class HttpGateway:
    """Network-facing front end over one serving backend.

    Parameters
    ----------
    backend:
        An :class:`~repro.serve.server.InferenceServer` or
        :class:`~repro.serve.cluster.ClusterCoordinator` (anything with
        ``submit`` / ``metrics`` / ``draining`` / ``begin_drain`` /
        ``unit_price_us``), already ``start()``-ed by the caller.
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    send_queue_limit:
        Per-WS-client bound on queued result frames (see module docs).
    clock:
        ``"sim"`` stamps nothing (the backend's discrete-event clock
        assigns arrivals); ``"wall"`` stamps arrivals with elapsed real
        microseconds since gateway start.
    tracer:
        Optional :class:`~repro.obs.Tracer`; gateway spans (accept ->
        parse -> submit -> stream) go on the wall track.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        send_queue_limit: int = DEFAULT_SEND_QUEUE_LIMIT,
        clock: str = "sim",
        tracer: Tracer | None = None,
    ) -> None:
        if clock not in ("sim", "wall"):
            raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
        if send_queue_limit < 1:
            raise ValueError(
                f"send_queue_limit must be >= 1, got {send_queue_limit}"
            )
        self.backend = backend
        self.host = host
        self.port = port
        self.send_queue_limit = send_queue_limit
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = backend.metrics
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._inflight: set[asyncio.Task] = set()
        self._draining = False
        self._t0 = time.perf_counter()
        self._unit_us: dict[str, float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start accepting."""
        if self._server is not None:
            return
        self._draining = False
        self._t0 = time.perf_counter()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` (or :meth:`stop`) has been called --
        or the backend itself started draining underneath us."""
        return self._draining or bool(
            getattr(self.backend, "draining", False)
        )

    def drain(self) -> None:
        """Stop admitting new work; let in-flight requests complete.

        New connections are answered 503 and closed; new submissions on
        existing connections get 503 (HTTP) or an error message (WS).
        The backend's own drain hook is pulled in the same instant, so
        in-process submitters see :class:`ServerDraining` too.
        """
        self._draining = True
        begin = getattr(self.backend, "begin_drain", None)
        if begin is not None:
            begin()

    async def stop(self, *, timeout: float = DEFAULT_STOP_TIMEOUT) -> None:
        """Graceful shutdown: drain, finish in-flight work, close.

        Waits up to ``timeout`` wall seconds for in-flight submissions
        and open connections to wind down, then force-closes whatever
        is left (counted nowhere near the drop counters -- by then every
        submission future has resolved or been refused).
        """
        self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.perf_counter() + timeout
        if self._inflight:
            await asyncio.wait(
                self._inflight,
                timeout=max(0.0, deadline - time.perf_counter()),
            )
        if self._connections:
            _, pending = await asyncio.wait(
                self._connections,
                timeout=max(0.0, deadline - time.perf_counter()),
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()
        self._inflight.clear()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def _arrival_us(self) -> float | None:
        return self._now_us() if self.clock == "wall" else None

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        accept_us = self._now_us()
        self.metrics.record_gateway_connection()
        try:
            if self.draining:
                # Refuse the whole connection: a load balancer health
                # check has already failed by now, this is the stragglers.
                self.metrics.record_gateway_unavailable()
                writer.write(encode_response(
                    503,
                    b'{"error":"draining"}',
                    close=True,
                ))
                await writer.drain()
                # Consume whatever request bytes already arrived before
                # closing: unread receive-buffer data turns close() into
                # a TCP RST, which can destroy the 503 in flight.
                try:
                    await asyncio.wait_for(reader.read(65536), timeout=0.2)
                except asyncio.TimeoutError:  # repro: allow-swallowed-exception -- straggler sent nothing; close anyway
                    pass
                return
            while True:
                try:
                    request = await read_http_request(reader)
                except ProtocolError:
                    self.metrics.record_gateway_bad_request()
                    writer.write(encode_response(
                        400, b'{"error":"malformed request"}', close=True
                    ))
                    await writer.drain()
                    return
                if request is None:
                    return
                parse_us = self._now_us()
                self.metrics.record_gateway_request()
                if request.is_websocket_upgrade:
                    await self._serve_websocket(reader, writer, request)
                    return
                close = await self._serve_http(writer, request)
                if self.tracer.enabled:
                    self.tracer.span(
                        f"gw.{request.method} {request.target}",
                        "gateway",
                        accept_us,
                        self._now_us(),
                        track="wall",
                        lane="gateway",
                        parse_us=parse_us,
                    )
                if close:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            # Client hangup mid-exchange: routine for a network server,
            # not a gateway fault -- the connection just ends.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # repro: allow-swallowed-exception -- closing an already-reset transport
                pass

    # ------------------------------------------------------------------
    # plain HTTP endpoints
    # ------------------------------------------------------------------
    async def _serve_http(
        self, writer: asyncio.StreamWriter, request: HttpRequest
    ) -> bool:
        """Serve one parsed request; returns True to close the socket."""
        route = (request.method, request.target)
        if route == ("POST", "/v1/infer"):
            status, body = await self._infer(request.body)
        elif route == ("GET", "/v1/metrics"):
            status, body = 200, canonical_json(
                self.metrics.snapshot()
            ).encode("utf-8")
        elif route == ("GET", "/healthz"):
            state = "draining" if self.draining else "ok"
            status, body = 200, canonical_json(
                {"status": state}
            ).encode("utf-8")
        elif request.target in ("/v1/infer", "/v1/metrics", "/healthz"):
            status, body = 405, b'{"error":"method not allowed"}'
        else:
            status, body = 404, b'{"error":"no such endpoint"}'
        close = request.wants_close
        writer.write(encode_response(status, body, close=close))
        await writer.drain()
        return close

    async def _infer(self, body: bytes) -> tuple[int, bytes]:
        """POST /v1/infer: one submission, one JSON result."""
        try:
            spec = self._parse_submission(body)
        except ProtocolError as exc:
            self.metrics.record_gateway_bad_request()
            return 400, canonical_json(
                {"error": {"type": "bad_request", "message": str(exc)}}
            ).encode("utf-8")
        status, payload = await self._submit(spec)
        return status, canonical_json(payload).encode("utf-8")

    def _parse_submission(self, raw: bytes) -> dict[str, Any]:
        """Validate one submission object (HTTP body or WS message)."""
        try:
            spec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable submission: {exc}") from exc
        if not isinstance(spec, dict):
            raise ProtocolError(
                f"submission must be a JSON object, got "
                f"{type(spec).__name__}"
            )
        model = spec.get("model")
        if not isinstance(model, str) or not model:
            raise ProtocolError("submission needs a non-empty 'model'")
        tag = spec.get("tag", "")
        if not isinstance(tag, str):
            raise ProtocolError(f"'tag' must be a string, got {tag!r}")
        arrival = spec.get("arrival_us")
        if arrival is not None and not isinstance(arrival, (int, float)):
            raise ProtocolError(
                f"'arrival_us' must be a number, got {arrival!r}"
            )
        return spec

    async def _submit(
        self, spec: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Run one validated submission; (HTTP status, JSON payload).

        WS streaming reuses this and keeps only the payload, mapping
        non-200 statuses to error messages on the stream.
        """
        model = spec["model"]
        tag = spec.get("tag", "")
        arrival = spec.get("arrival_us")
        if arrival is None:
            arrival = self._arrival_us()
        if self.draining:
            self.metrics.record_gateway_unavailable()
            return 503, {
                "tag": tag,
                "error": {"type": "draining", "message": "draining"},
            }
        submit_t0 = self._now_us()
        try:
            result = await self.backend.submit(model, arrival)
            unit = await self._unit_price(model)
        except KeyError as exc:
            return 404, {
                "tag": tag,
                "error": {"type": "unknown_model", "message": str(exc)},
            }
        except ServerDraining as exc:
            self.metrics.record_gateway_unavailable()
            return 503, {
                "tag": tag,
                "error": {"type": "draining", "message": str(exc)},
            }
        except AdmissionRejected as exc:
            return 429, {
                "tag": tag,
                "error": {"type": "admission_rejected", "message": str(exc)},
            }
        pair = getattr(result, "pair", "") or getattr(
            getattr(self.backend, "pair", None), "name", ""
        )
        payload: dict[str, Any] = {
            "tag": tag,
            "model": model,
            "request_id": result.request_id,
            "worker": getattr(result, "worker", ""),
            "digest": result_digest(model, pair, unit, tag),
            "pricing": {"unit_us": unit, "pair": pair},
            "deadline": {
                "deadline_us": _json_safe(
                    getattr(result, "deadline_us", float("inf"))
                ),
                "met": bool(getattr(result, "met_deadline", True)),
            },
            "timing": {
                "arrival_us": result.arrival_us,
                "start_us": getattr(result, "start_us", None),
                "finish_us": result.finish_us,
            },
            "batch": {
                "size": getattr(result, "batch_size", 1),
                "requests": getattr(result, "batch_requests", 1),
            },
            "switched": bool(getattr(result, "switched", False)),
        }
        if "echo" in spec:
            payload["echo"] = spec["echo"]
        if self.tracer.enabled:
            self.tracer.span(
                f"gw.submit {model}",
                "gateway",
                submit_t0,
                self._now_us(),
                track="wall",
                lane="gateway",
                model=model,
                tag=tag,
            )
        return 200, payload

    async def _unit_price(self, model: str) -> float:
        unit = self._unit_us.get(model)
        if unit is None:
            unit = await self.backend.unit_price_us(model)
            self._unit_us[model] = unit
        return unit

    # ------------------------------------------------------------------
    # WebSocket streaming
    # ------------------------------------------------------------------
    async def _serve_websocket(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: HttpRequest,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if request.target != "/v1/stream" or not key:
            self.metrics.record_gateway_bad_request()
            writer.write(encode_response(
                400, b'{"error":"bad websocket upgrade"}', close=True
            ))
            await writer.drain()
            return
        writer.write(encode_response(
            101,
            headers={
                "Upgrade": "websocket",
                "Connection": "Upgrade",
                "Sec-WebSocket-Accept": ws_accept_key(key),
            },
        ))
        await writer.drain()
        self.metrics.record_ws_connection()
        queue = _BoundedSendQueue(self.send_queue_limit, self.metrics)
        sender = asyncio.ensure_future(self._ws_sender(writer, queue))
        inflight: set[asyncio.Task] = set()
        stream_t0 = self._now_us()
        try:
            await self._ws_reader(reader, queue, inflight)
        finally:
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            await queue.put(encode_ws_frame(OP_CLOSE, b""))
            await queue.shutdown()
            await sender
            if self.tracer.enabled:
                self.tracer.span(
                    "gw.stream", "gateway", stream_t0, self._now_us(),
                    track="wall", lane="gateway",
                )

    async def _ws_reader(
        self,
        reader: asyncio.StreamReader,
        queue: _BoundedSendQueue,
        inflight: set[asyncio.Task],
    ) -> None:
        """Read frames; spawn one submission task per data message.

        The deferral point for backpressure: before reading another
        frame off the socket the reader parks until the client's send
        queue is below its bound, so a slow reader throttles its own
        submissions instead of growing server-side state.
        """
        decoder = WSDecoder(require_mask=True)
        assembler = WSMessageAssembler()
        while True:
            await queue.wait_not_full()
            chunk = await reader.read(65536)
            if not chunk:
                decoder.check_eof()
                return
            try:
                for frame in self._feed(decoder, chunk):
                    message = assembler.push(frame)
                    if message is None:
                        continue
                    opcode, payload = message
                    if opcode == OP_CLOSE:
                        return
                    if opcode == OP_PING:
                        await queue.put(
                            encode_ws_frame(OP_PONG, payload)
                        )
                        continue
                    if opcode == OP_PONG:
                        continue
                    task = asyncio.ensure_future(
                        self._ws_submit(payload, queue)
                    )
                    inflight.add(task)
                    task.add_done_callback(inflight.discard)
                    self._inflight.add(task)
                    task.add_done_callback(self._inflight.discard)
            except ProtocolError as exc:
                self.metrics.record_gateway_bad_request()
                await queue.put(encode_ws_frame(
                    OP_TEXT,
                    canonical_json({
                        "error": {
                            "type": "protocol_error",
                            "message": str(exc),
                        }
                    }).encode("utf-8"),
                ))
                return

    @staticmethod
    def _feed(decoder: WSDecoder, chunk: bytes):
        decoder.feed(chunk)
        return decoder.frames()

    async def _ws_submit(
        self, payload: bytes, queue: _BoundedSendQueue
    ) -> None:
        """One streamed submission: submit, then enqueue the result."""
        try:
            spec = self._parse_submission(payload)
        except ProtocolError as exc:
            self.metrics.record_gateway_bad_request()
            await queue.put(encode_ws_frame(
                OP_TEXT,
                canonical_json({
                    "error": {"type": "bad_request", "message": str(exc)}
                }).encode("utf-8"),
            ))
            return
        status, result = await self._submit(spec)
        await queue.put(encode_ws_frame(
            OP_TEXT, canonical_json(result).encode("utf-8")
        ))
        if status == 200:
            self.metrics.record_ws_streamed()

    async def _ws_sender(
        self, writer: asyncio.StreamWriter, queue: _BoundedSendQueue
    ) -> None:
        """Drain the send queue onto the socket, frame by frame.

        ``writer.drain()`` propagates the client's TCP receive window:
        a slow reader stalls this coroutine, the queue fills, and the
        reader coroutine defers -- the whole backpressure chain.
        """
        while True:
            frame = await queue.get()
            if frame is None:
                return
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):  # repro: allow-swallowed-exception -- client reset mid-stream; keep draining so producers unblock
                continue
