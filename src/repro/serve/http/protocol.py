"""Minimal HTTP/1.1 request parsing and RFC 6455 WebSocket framing.

The gateway (:mod:`repro.serve.http.gateway`) fronts real sockets, so
this module owns the two wire formats it speaks -- with the same
discipline :mod:`repro.serve.ipc` applies to the cluster pipes:

* **hard size bounds** turn a corrupt or hostile length field into a
  loud :class:`ProtocolError` instead of an unbounded allocation
  (:data:`MAX_HEAD_BYTES`, :data:`MAX_BODY_BYTES`,
  :data:`MAX_WS_PAYLOAD_BYTES`);
* **torn input is an error, never a hang** -- EOF inside a frame or a
  request head raises :class:`ProtocolError`; EOF *between* messages is
  a clean ``None``.  The incremental :class:`WSDecoder` simply retains
  a partial frame until more bytes arrive, and its :meth:`WSDecoder
  .check_eof` makes a dangling partial loud at stream end;
* **pure functions / incremental state machines** -- everything here is
  exercisable byte-by-byte without sockets, which is what the
  hypothesis suites (``tests/serve/http/test_protocol_properties.py``)
  lean on: arbitrary payloads survive arbitrary fragmentation, masking,
  and chunk boundaries.

Masking note: RFC 6455 requires client-to-server frames to be masked
with a 32-bit key.  Encoding takes the key as an *explicit argument*
(``mask=``) -- this package never draws hidden entropy, so client-side
tests and demos mask with explicitly seeded RNGs and stay replayable.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import struct
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "MAX_HEAD_BYTES",
    "MAX_BODY_BYTES",
    "MAX_WS_PAYLOAD_BYTES",
    "WS_GUID",
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "ProtocolError",
    "HttpRequest",
    "parse_request_head",
    "read_http_request",
    "encode_response",
    "status_line",
    "ws_accept_key",
    "WSFrame",
    "encode_ws_frame",
    "encode_ws_message",
    "WSDecoder",
    "WSMessageAssembler",
]

#: Upper bound on one request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

#: Upper bound on one HTTP request body; mirrors the cluster pipes'
#: ``MAX_FRAME_BYTES`` discipline (loud error, not a huge allocation).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Upper bound on one WebSocket frame payload.
MAX_WS_PAYLOAD_BYTES = 16 * 1024 * 1024

#: RFC 6455 magic GUID concatenated to ``Sec-WebSocket-Key``.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_DATA_OPCODES = frozenset({OP_TEXT, OP_BINARY})
_CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})

_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(RuntimeError):
    """Malformed wire input: bad request head, torn/invalid WS frame."""


# ----------------------------------------------------------------------
# HTTP/1.1 requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HttpRequest:
    """One parsed request.  Header names are lower-cased."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    body: bytes = b""

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"

    @property
    def is_websocket_upgrade(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        upgrade = self.headers.get("upgrade", "").lower()
        return "upgrade" in connection and upgrade == "websocket"


def parse_request_head(head: bytes) -> HttpRequest:
    """Parse the request line + headers (no body) of one request.

    ``head`` is everything up to and including the blank line.  Raises
    :class:`ProtocolError` on anything malformed; never returns a
    half-parsed request.
    """
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(
            f"request head of {len(head)} bytes exceeds MAX_HEAD_BYTES "
            f"({MAX_HEAD_BYTES})"
        )
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"non-ASCII request head: {exc}") from exc
    lines = text.split("\r\n")
    # Tolerate (and strip) the trailing blank line of a full head blob.
    while lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise ProtocolError("empty request head")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if not method.isalpha() or not method.isupper():
        raise ProtocolError(f"malformed method: {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported HTTP version: {version!r}")
    if not target.startswith("/"):
        raise ProtocolError(f"malformed request target: {target!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or "\n" in line:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.lower()] = value.strip()
    return HttpRequest(
        method=method, target=target, version=version, headers=headers
    )


async def read_http_request(
    reader: asyncio.StreamReader,
) -> HttpRequest | None:
    """Read one full request (head + Content-Length body) from a stream.

    Returns ``None`` on a clean EOF before any byte of a new request
    (client hung up between requests); raises :class:`ProtocolError` on
    a torn head, an oversize head/body, or a malformed Content-Length.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"EOF inside a request head ({len(exc.partial)} bytes)"
        ) from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            f"request head exceeds the stream limit: {exc}"
        ) from exc
    request = parse_request_head(head)
    length_text = request.headers.get("content-length")
    if length_text is None:
        return request
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(
            f"malformed Content-Length: {length_text!r}"
        ) from exc
    if length < 0:
        raise ProtocolError(f"negative Content-Length: {length}")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"body of {length} bytes exceeds MAX_BODY_BYTES "
            f"({MAX_BODY_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"EOF after {len(exc.partial)}/{length} body bytes"
        ) from exc
    return HttpRequest(
        method=request.method,
        target=request.target,
        version=request.version,
        headers=request.headers,
        body=body,
    )


def status_line(status: int) -> str:
    return f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"


def encode_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    close: bool = False,
) -> bytes:
    """One full HTTP/1.1 response with an explicit Content-Length."""
    lines = [status_line(status)]
    if body or status != 101:
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {len(body)}")
    if headers:
        lines.extend(f"{name}: {value}" for name, value in headers.items())
    if close:
        lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


# ----------------------------------------------------------------------
# RFC 6455 WebSocket frames
# ----------------------------------------------------------------------
def ws_accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` value for one handshake key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


@dataclass(frozen=True)
class WSFrame:
    """One decoded frame, payload already unmasked."""

    fin: bool
    opcode: int
    payload: bytes

    @property
    def is_control(self) -> bool:
        return self.opcode in _CONTROL_OPCODES


def encode_ws_frame(
    opcode: int,
    payload: bytes,
    *,
    fin: bool = True,
    mask: bytes | None = None,
) -> bytes:
    """Encode one frame.  ``mask`` is the explicit 4-byte client key
    (``None`` = unmasked, the server-to-client direction)."""
    if opcode in _CONTROL_OPCODES:
        if not fin:
            raise ProtocolError(
                f"control frame (opcode {opcode:#x}) must not be fragmented"
            )
        if len(payload) > 125:
            raise ProtocolError(
                f"control frame payload of {len(payload)} bytes exceeds 125"
            )
    if len(payload) > MAX_WS_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds "
            f"MAX_WS_PAYLOAD_BYTES ({MAX_WS_PAYLOAD_BYTES})"
        )
    first = (0x80 if fin else 0x00) | (opcode & 0x0F)
    mask_bit = 0x80 if mask is not None else 0x00
    length = len(payload)
    if length < 126:
        header = bytes([first, mask_bit | length])
    elif length < 1 << 16:
        header = bytes([first, mask_bit | 126]) + struct.pack(">H", length)
    else:
        header = bytes([first, mask_bit | 127]) + struct.pack(">Q", length)
    if mask is None:
        return header + payload
    if len(mask) != 4:
        raise ProtocolError(f"mask key must be 4 bytes, got {len(mask)}")
    return header + mask + _apply_mask(payload, mask)


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    """XOR-mask (symmetric: also unmasks) without a Python-level loop."""
    if not payload:
        return b""
    repeated = mask * (len(payload) // 4 + 1)
    return bytes(a ^ b for a, b in zip(payload, repeated))


def encode_ws_message(
    payload: bytes | str,
    *,
    opcode: int | None = None,
    mask: bytes | None = None,
    fragment_size: int | None = None,
) -> bytes:
    """Encode one data message, optionally fragmented.

    Text payloads (``str``) default to :data:`OP_TEXT`, byte payloads
    to :data:`OP_BINARY`.  ``fragment_size`` splits the payload into an
    initial frame plus continuation frames (the last one carries FIN),
    re-using ``mask`` for every fragment.
    """
    if isinstance(payload, str):
        data = payload.encode("utf-8")
        opcode = OP_TEXT if opcode is None else opcode
    else:
        data = payload
        opcode = OP_BINARY if opcode is None else opcode
    if opcode not in _DATA_OPCODES:
        raise ProtocolError(
            f"messages must use a data opcode, got {opcode:#x}"
        )
    if fragment_size is None or fragment_size >= max(len(data), 1):
        return encode_ws_frame(opcode, data, mask=mask)
    if fragment_size < 1:
        raise ProtocolError(
            f"fragment_size must be >= 1, got {fragment_size}"
        )
    chunks = [
        data[i : i + fragment_size]
        for i in range(0, len(data), fragment_size)
    ]
    frames = []
    for i, chunk in enumerate(chunks):
        frames.append(
            encode_ws_frame(
                opcode if i == 0 else OP_CONT,
                chunk,
                fin=(i == len(chunks) - 1),
                mask=mask,
            )
        )
    return b"".join(frames)


class WSDecoder:
    """Incremental frame decoder: feed arbitrary chunks, pop frames.

    A partial frame is simply retained until more bytes arrive --
    feeding torn input never raises and never spins; call
    :meth:`check_eof` when the stream ends to turn a dangling partial
    frame into a loud :class:`ProtocolError`.  Structurally invalid
    bytes (RSV bits set, bad opcode, oversize or fragmented control
    frame, oversize payload, unexpected masking) raise immediately.

    ``require_mask`` enforces the RFC's client-to-server masking rule
    (the gateway's receive direction); ``forbid_mask`` enforces the
    server-to-client rule (a client's receive direction).
    """

    def __init__(
        self, *, require_mask: bool = False, forbid_mask: bool = False
    ) -> None:
        if require_mask and forbid_mask:
            raise ValueError("require_mask and forbid_mask are exclusive")
        self.require_mask = require_mask
        self.forbid_mask = forbid_mask
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def check_eof(self) -> None:
        """Raise if the stream ended inside a frame."""
        if self._buffer:
            raise ProtocolError(
                f"EOF inside a WebSocket frame "
                f"({len(self._buffer)} dangling bytes)"
            )

    def frames(self) -> Iterator[WSFrame]:
        """Yield every complete frame currently buffered."""
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield frame

    def _next_frame(self) -> WSFrame | None:
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        if first & 0x70:
            raise ProtocolError(
                f"RSV bits set ({first & 0x70:#04x}) with no negotiated "
                f"extension"
            )
        opcode = first & 0x0F
        if opcode not in _DATA_OPCODES | _CONTROL_OPCODES | {OP_CONT}:
            raise ProtocolError(f"unknown opcode {opcode:#x}")
        fin = bool(first & 0x80)
        masked = bool(second & 0x80)
        if self.require_mask and not masked:
            raise ProtocolError(
                "unmasked client frame (RFC 6455 requires client-to-"
                "server masking)"
            )
        if self.forbid_mask and masked:
            raise ProtocolError(
                "masked server frame (RFC 6455 forbids server-to-client "
                "masking)"
            )
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from(">H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from(">Q", buf, offset)
            offset += 8
        if length > MAX_WS_PAYLOAD_BYTES:
            raise ProtocolError(
                f"frame payload of {length} bytes exceeds "
                f"MAX_WS_PAYLOAD_BYTES ({MAX_WS_PAYLOAD_BYTES})"
            )
        if opcode in _CONTROL_OPCODES:
            if not fin:
                raise ProtocolError(
                    f"fragmented control frame (opcode {opcode:#x})"
                )
            if length > 125:
                raise ProtocolError(
                    f"control frame payload of {length} bytes exceeds 125"
                )
        mask = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            mask = bytes(buf[offset : offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset : offset + length])
        del buf[: offset + length]
        if masked:
            payload = _apply_mask(payload, mask)
        return WSFrame(fin=fin, opcode=opcode, payload=payload)


class WSMessageAssembler:
    """Reassemble data messages from (possibly fragmented) frames.

    Feed frames in wire order via :meth:`push`; complete data messages
    come back as ``(opcode, payload)`` with the opcode of the initial
    fragment.  Control frames pass through immediately (they may
    interleave with a fragmented message) as ``(opcode, payload)``
    too.  Fragmentation violations -- a new data frame inside an open
    message, or a continuation with no message open -- raise
    :class:`ProtocolError`.
    """

    def __init__(self) -> None:
        self._opcode: int | None = None
        self._parts: list[bytes] = []
        self._size = 0

    @property
    def mid_message(self) -> bool:
        return self._opcode is not None

    def push(self, frame: WSFrame) -> tuple[int, bytes] | None:
        if frame.is_control:
            return frame.opcode, frame.payload
        if frame.opcode == OP_CONT:
            if self._opcode is None:
                raise ProtocolError(
                    "continuation frame with no message in progress"
                )
        elif self._opcode is not None:
            raise ProtocolError(
                f"new data frame (opcode {frame.opcode:#x}) inside a "
                f"fragmented message"
            )
        else:
            self._opcode = frame.opcode
        self._parts.append(frame.payload)
        self._size += len(frame.payload)
        if self._size > MAX_WS_PAYLOAD_BYTES:
            raise ProtocolError(
                f"fragmented message of {self._size} bytes exceeds "
                f"MAX_WS_PAYLOAD_BYTES ({MAX_WS_PAYLOAD_BYTES})"
            )
        if not frame.fin:
            return None
        opcode = self._opcode
        payload = b"".join(self._parts)
        self._opcode = None
        self._parts = []
        self._size = 0
        assert opcode is not None
        return opcode, payload
