"""Network ingress: HTTP/1.1 + WebSocket gateway over the serving stack.

See :mod:`repro.serve.http.gateway` for the endpoint surface and
backpressure semantics, and :mod:`repro.serve.http.protocol` for the
stdlib-only HTTP parser and RFC 6455 frame codec underneath it.
"""

from .gateway import DEFAULT_SEND_QUEUE_LIMIT, HttpGateway, result_digest
from .protocol import (
    MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
    MAX_WS_PAYLOAD_BYTES,
    HttpRequest,
    ProtocolError,
    WSDecoder,
    WSFrame,
    WSMessageAssembler,
    encode_response,
    encode_ws_frame,
    encode_ws_message,
    parse_request_head,
    read_http_request,
    ws_accept_key,
)

__all__ = [
    "DEFAULT_SEND_QUEUE_LIMIT",
    "HttpGateway",
    "result_digest",
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "MAX_WS_PAYLOAD_BYTES",
    "HttpRequest",
    "ProtocolError",
    "WSDecoder",
    "WSFrame",
    "WSMessageAssembler",
    "encode_response",
    "encode_ws_frame",
    "encode_ws_message",
    "parse_request_head",
    "read_http_request",
    "ws_accept_key",
]
