"""Pluggable queue disciplines for the inference server's worker loops.

The server keeps one FIFO queue per model.  Each time a worker frees up
it must pick *which model's queue* to serve next; the original worker
loop hardcoded earliest-arrival-first.  This module turns that choice
into a :class:`QueueDiscipline` strategy object so SLO-aware policies
can be swapped in without touching the dispatch machinery:

``fifo``
    Earliest head arrival first, deeper queue breaking ties -- the
    original behavior and still the default.
``edf``
    Earliest-deadline-first.  Each request's deadline is its arrival
    plus its model's SLO (per-model ``ServedModel.slo_ms`` override, or
    the server-wide SLO).  Under backlog, requests whose objectives
    expire soonest are served first, which is the classic optimal
    single-machine policy for minimizing maximum lateness.
``wfq``
    Per-model weighted fair queueing.  Each model accrues normalized
    service (requests served divided by its ``ServedModel.weight``);
    the backlogged model with the least normalized service goes next,
    so a chatty model cannot starve a quiet one beyond its weight
    ratio.

Disciplines see only :class:`QueueSnapshot` views built from requests
that have *arrived by the worker's simulated now* -- the same
non-clairvoyance rule the dispatch loop enforces -- so every policy is
deterministic and assertable on the simulated clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "QueueSnapshot",
    "QueueDiscipline",
    "FIFODiscipline",
    "EDFDiscipline",
    "WFQDiscipline",
    "DISCIPLINES",
    "make_discipline",
]


@dataclass(frozen=True)
class QueueSnapshot:
    """What a discipline may know about one model's queue at dispatch time.

    All fields describe only requests that have arrived by the worker's
    simulated ``now`` (``depth`` counts exactly those).  ``served`` is
    the number of this model's requests dispatched so far across all
    workers -- the service history weighted fair queueing needs.
    """

    model: str
    depth: int
    head_arrival_us: float
    head_deadline_us: float
    weight: float
    served: int
    #: Workers currently hosting this model (1 without a placement
    #: layer).  A replicated model earned its replicas by being hot, so
    #: disciplines treat the count as a service-share multiplier.
    replicas: int = 1

    @property
    def normalized_service(self) -> float:
        """Service received per unit share (WFQ's virtual-time proxy).

        The share is ``weight * replicas``: the placement layer grants
        hot models more replicas, and fair queueing on each worker
        honors that grant instead of fighting it.  With ``replicas=1``
        (no placement layer) this is the classic served-over-weight.
        """
        return self.served / (self.weight * self.replicas)


class QueueDiscipline(ABC):
    """Strategy choosing which model's queue a freed worker serves next."""

    #: Registry name; subclasses override.
    name: str = "base"

    @abstractmethod
    def select(self, queues: Sequence[QueueSnapshot]) -> str:
        """Return the model to serve from ``queues`` (non-empty, depth >= 1).

        The server guarantees ``queues`` holds only models with at least
        one arrived request; implementations must return one of their
        ``model`` names.
        """

    def trace_attributes(
        self, queues: Sequence[QueueSnapshot], chosen: str
    ) -> dict:
        """Span attributes explaining one scheduling decision.

        Called by the server only when tracing is enabled, right after
        :meth:`select`, and attached to the dispatched batch's span --
        so a timeline viewer can answer "why this model?" at every
        dispatch.  Subclasses may extend the dict with policy-specific
        signals (deadlines, virtual time); the base payload is the
        discipline name, the chosen model, and the visible backlog.
        """
        return {
            "discipline": self.name,
            "chosen": chosen,
            "candidates": len(queues),
            "queue_depths": {q.model: q.depth for q in queues},
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class FIFODiscipline(QueueDiscipline):
    """Earliest head arrival first; deeper queue breaks ties.

    This reproduces the server's original hardcoded loop: batches stay
    homogeneous per model and no request is served after a
    later-arriving one from another queue.
    """

    name = "fifo"

    def select(self, queues: Sequence[QueueSnapshot]) -> str:
        best = min(queues, key=lambda q: (q.head_arrival_us, -q.depth, q.model))
        return best.model


class EDFDiscipline(QueueDiscipline):
    """Earliest-deadline-first over the queue heads.

    Ties fall back to FIFO order so EDF degenerates to FIFO when every
    model shares one SLO and arrivals are distinct.
    """

    name = "edf"

    def select(self, queues: Sequence[QueueSnapshot]) -> str:
        best = min(
            queues,
            key=lambda q: (
                q.head_deadline_us, q.head_arrival_us, -q.depth, q.model
            ),
        )
        return best.model

    def trace_attributes(
        self, queues: Sequence[QueueSnapshot], chosen: str
    ) -> dict:
        attrs = super().trace_attributes(queues, chosen)
        attrs["head_deadlines_us"] = {
            q.model: q.head_deadline_us for q in queues
        }
        return attrs


class WFQDiscipline(QueueDiscipline):
    """Weighted fair queueing: least normalized service goes first.

    Uses served-requests-over-weight as the virtual-time proxy (a
    deficit-round-robin-style approximation that needs no packet
    lengths); head arrival breaks ties so the discipline is
    work-conserving and deterministic.
    """

    name = "wfq"

    def select(self, queues: Sequence[QueueSnapshot]) -> str:
        best = min(
            queues,
            key=lambda q: (
                q.normalized_service, q.head_arrival_us, -q.depth, q.model
            ),
        )
        return best.model

    def trace_attributes(
        self, queues: Sequence[QueueSnapshot], chosen: str
    ) -> dict:
        attrs = super().trace_attributes(queues, chosen)
        attrs["normalized_service"] = {
            q.model: q.normalized_service for q in queues
        }
        return attrs


DISCIPLINES: dict[str, type[QueueDiscipline]] = {
    cls.name: cls
    for cls in (FIFODiscipline, EDFDiscipline, WFQDiscipline)
}


def make_discipline(discipline: str | QueueDiscipline) -> QueueDiscipline:
    """Resolve a discipline name (or pass an instance through)."""
    if isinstance(discipline, QueueDiscipline):
        return discipline
    try:
        return DISCIPLINES[discipline]()
    except KeyError as exc:
        raise ValueError(
            f"unknown queue discipline {discipline!r}; "
            f"available: {sorted(DISCIPLINES)}"
        ) from exc
