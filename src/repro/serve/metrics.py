"""Serving metrics: per-backend counters and latency percentiles.

Everything here is about *simulated* time -- the microseconds the cost
model assigns to batches -- because that is the quantity the paper's
latency tables report and the SLO is defined against.  Wall-clock time of
the asyncio machinery is incidental and never recorded.

The registry aggregates:

* per-worker request/batch counts, batch occupancy (requests actually
  coalesced / batch size the plan was compiled for) and queue depth at
  dispatch;
* per-worker p50/p95 of the simulated per-request latency (queue wait +
  batch service, over a sliding window of the most recent requests so a
  long-running server's memory stays bounded) and SLO miss counts;
* scheduler policy counters: per-model admission rejections and
  deferrals, the high-water queue depth, per-request deadline misses
  (finish past arrival + SLO), and precision-autoswitch activity
  (switched batches, switch rate, mean modeled accuracy given up);
* cold-start counters: plans compiled off-loop by worker loops after
  traffic arrived (and the wall-clock stall those dispatches absorbed),
  plus plans pre-compiled by ``start(prewarm=True)`` -- the one
  deliberate exception to the simulated-time rule, because compile
  stall is a wall-clock property of the process, not of the model;
* plan-cache (incl. persistence) and autotune-cache hit rates, pulled
  in at report time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..kernels.autotune import AutotuneCacheStats
from ..kernels.autotune import cache_stats as autotune_cache_stats
from .plan_cache import PlanCache

__all__ = ["percentile", "WorkerMetrics", "ServerMetrics"]

#: Sliding-window length for per-request latency percentiles.
DEFAULT_LATENCY_WINDOW = 10_000


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample.

    ``q`` is in [0, 100].  Returns 0.0 for an empty sample so freshly
    started servers can render a report without special-casing.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = list(values)
    if not data:
        return 0.0
    return float(np.percentile(data, q))


@dataclass
class WorkerMetrics:
    """Counters of one (backend, device) worker.

    Scalar counters cover the full lifetime; ``request_latencies_us``
    holds only the last ``window`` requests (percentiles are over that
    sliding window) so memory stays bounded under sustained load.
    """

    worker: str
    window: int = DEFAULT_LATENCY_WINDOW
    requests: int = 0
    batches: int = 0
    slo_misses: int = 0
    deadline_misses: int = 0
    switched_batches: int = 0
    accuracy_delta_sum: float = 0.0
    occupancy_sum: float = 0.0
    queue_depth_sum: int = 0
    service_us_sum: float = 0.0
    request_latencies_us: deque[float] = field(init=False)
    batch_sizes: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.request_latencies_us = deque(maxlen=self.window)

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_sum / self.batches if self.batches else 0.0

    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depth_sum / self.batches if self.batches else 0.0

    @property
    def p50_latency_us(self) -> float:
        return percentile(self.request_latencies_us, 50)

    @property
    def p95_latency_us(self) -> float:
        return percentile(self.request_latencies_us, 95)

    @property
    def simulated_throughput_rps(self) -> float:
        """Requests over busy time -- the worker's service-rate ceiling."""
        if not self.service_us_sum:
            return 0.0
        return self.requests / (self.service_us_sum * 1e-6)


class ServerMetrics:
    """Aggregated serving counters, keyed by worker name.

    The autotune cache is process-global; call :meth:`mark_autotune_baseline`
    (the server does this on ``start()``) so the report shows the delta
    attributable to this server's traffic rather than whole-process counters.
    """

    def __init__(self) -> None:
        self.workers: dict[str, WorkerMetrics] = {}
        self.rejected: dict[str, int] = {}
        self.deferred: dict[str, int] = {}
        self.max_queue_depth_seen: int = 0
        #: Plans compiled off-loop by worker loops after traffic arrived.
        self.cold_compiles: int = 0
        #: Worker-loop iterations that hit a cold key and went async.
        self.cold_dispatches: int = 0
        #: Wall-clock microseconds those dispatches waited on compilation
        #: (the event loop kept running; only the cold batch stalled).
        self.compile_stall_us: float = 0.0
        #: Plans compiled by ``start(prewarm=True)`` before traffic.
        self.prewarmed_plans: int = 0
        #: Wall-clock microseconds the prewarm pass took.
        self.prewarm_us: float = 0.0
        self._autotune_baseline: AutotuneCacheStats | None = None

    # ------------------------------------------------------------------
    # admission / queue counters (server-level, keyed by model)
    # ------------------------------------------------------------------
    def record_rejection(self, model: str) -> None:
        """One request shed by the admission policy."""
        self.rejected[model] = self.rejected.get(model, 0) + 1

    def record_deferral(self, model: str) -> None:
        """One request parked by the admission policy's defer mode."""
        self.deferred[model] = self.deferred.get(model, 0) + 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the admitted queue."""
        if depth > self.max_queue_depth_seen:
            self.max_queue_depth_seen = depth

    # ------------------------------------------------------------------
    # cold-start counters (server-level)
    # ------------------------------------------------------------------
    def record_cold_compile(self, plans: int, stall_us: float) -> None:
        """One worker-loop dispatch that found cold keys: ``plans`` were
        compiled off-loop while ``stall_us`` of wall time passed before
        that batch could dispatch (other queues kept being served)."""
        self.cold_compiles += plans
        self.cold_dispatches += 1
        self.compile_stall_us += stall_us

    def record_prewarm(self, plans: int, elapsed_us: float) -> None:
        """One ``start(prewarm=True)`` pass that compiled ``plans``."""
        self.prewarmed_plans += plans
        self.prewarm_us += elapsed_us

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())

    @property
    def total_deferred(self) -> int:
        return sum(self.deferred.values())

    def mark_autotune_baseline(self) -> None:
        """Snapshot the global autotune counters as this server's zero."""
        self._autotune_baseline = autotune_cache_stats()

    def autotune_stats(self) -> AutotuneCacheStats:
        """Autotune counters since the baseline (global if never marked)."""
        now = autotune_cache_stats()
        base = self._autotune_baseline
        if base is None:
            return now
        return AutotuneCacheStats(
            hits=max(0, now.hits - base.hits),
            misses=max(0, now.misses - base.misses),
            entries=now.entries,
        )

    def worker(self, name: str) -> WorkerMetrics:
        if name not in self.workers:
            self.workers[name] = WorkerMetrics(worker=name)
        return self.workers[name]

    def record_batch(
        self,
        worker: str,
        *,
        batch_size: int,
        requests: int,
        queue_depth: int,
        service_us: float,
        request_latencies_us: list[float],
        meets_slo: bool,
        deadline_misses: int = 0,
        switched: bool = False,
        accuracy_delta: float = 0.0,
    ) -> None:
        w = self.worker(worker)
        w.batches += 1
        w.requests += requests
        w.batch_sizes[batch_size] = w.batch_sizes.get(batch_size, 0) + 1
        w.occupancy_sum += requests / batch_size
        w.queue_depth_sum += queue_depth
        w.service_us_sum += service_us
        w.request_latencies_us.extend(request_latencies_us)
        if not meets_slo:
            w.slo_misses += 1
        w.deadline_misses += deadline_misses
        if switched:
            w.switched_batches += 1
            w.accuracy_delta_sum += accuracy_delta

    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(w.requests for w in self.workers.values())

    @property
    def total_batches(self) -> int:
        return sum(w.batches for w in self.workers.values())

    @property
    def total_deadline_misses(self) -> int:
        return sum(w.deadline_misses for w in self.workers.values())

    @property
    def total_switched_batches(self) -> int:
        return sum(w.switched_batches for w in self.workers.values())

    @property
    def switch_rate(self) -> float:
        """Fraction of dispatched batches served at a downgraded pair."""
        batches = self.total_batches
        return self.total_switched_batches / batches if batches else 0.0

    @property
    def mean_accuracy_delta(self) -> float:
        """Mean modeled accuracy given up per *switched* batch."""
        switched = self.total_switched_batches
        if not switched:
            return 0.0
        total = sum(w.accuracy_delta_sum for w in self.workers.values())
        return total / switched

    def batch_size_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for w in self.workers.values():
            for b, n in w.batch_sizes.items():
                hist[b] = hist.get(b, 0) + n
        return dict(sorted(hist.items()))

    def report(self, plan_cache: PlanCache | None = None) -> str:
        """Human-readable metrics summary (simulated milliseconds)."""
        lines = [
            f"requests served : {self.total_requests}",
            f"batches         : {self.total_batches}",
            f"batch sizes     : "
            + (", ".join(
                f"{b}x{n}" for b, n in self.batch_size_histogram().items()
            ) or "-"),
        ]
        lines.append(
            f"admission       : rejected {self.total_rejected}, "
            f"deferred {self.total_deferred}, "
            f"max queue depth {self.max_queue_depth_seen}"
        )
        lines.append(
            f"autoswitch      : {self.total_switched_batches}/"
            f"{self.total_batches} batches switched "
            f"(rate {self.switch_rate:.3f}), "
            f"mean accuracy delta {self.mean_accuracy_delta:.4f}"
        )
        lines.append(f"deadline misses : {self.total_deadline_misses}")
        lines.append(
            f"cold start      : {self.cold_compiles} off-loop compiles over "
            f"{self.cold_dispatches} cold dispatches "
            f"({self.compile_stall_us / 1e3:.1f} ms wall), "
            f"{self.prewarmed_plans} prewarmed plans "
            f"({self.prewarm_us / 1e3:.1f} ms wall)"
        )
        for name in sorted(self.workers):
            w = self.workers[name]
            lines.append(
                f"  {name}: {w.requests} reqs / {w.batches} batches, "
                f"p50 {w.p50_latency_us / 1e3:.3f} ms, "
                f"p95 {w.p95_latency_us / 1e3:.3f} ms, "
                f"occupancy {w.mean_occupancy:.2f}, "
                f"mean queue {w.mean_queue_depth:.1f}, "
                f"slo-miss batches {w.slo_misses}"
            )
        if plan_cache is not None:
            s = plan_cache.stats()
            lines.append(
                f"plan cache      : hit rate {s.hit_rate:.3f} "
                f"({s.hits}/{s.lookups} lookups, {s.entries} plans, "
                f"{s.evictions} evictions)"
            )
            lines.append(
                f"plan compiles   : {s.compiles} "
                f"({s.inloop_compiles} in-loop, "
                f"{s.offloaded_compiles} off-loop, "
                f"{s.coalesced} coalesced waits, "
                f"{s.compile_us / 1e3:.1f} ms wall); "
                f"persisted {s.persisted_entries} loaded / "
                f"{s.persisted_hits} hits"
            )
        a = self.autotune_stats()
        since = " since start" if self._autotune_baseline is not None else ""
        lines.append(
            f"autotune cache  : hit rate {a.hit_rate:.3f} "
            f"({a.hits}/{a.lookups} lookups{since}, {a.entries} entries)"
        )
        return "\n".join(lines)
