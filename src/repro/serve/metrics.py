"""Serving metrics: per-backend counters and latency percentiles.

Everything here is about *simulated* time -- the microseconds the cost
model assigns to batches -- because that is the quantity the paper's
latency tables report and the SLO is defined against.  Wall-clock time of
the asyncio machinery is incidental and never recorded.

The registry aggregates:

* per-worker request/batch counts, batch occupancy (requests actually
  coalesced / batch size the plan was compiled for) and queue depth at
  dispatch;
* per-worker p50/p95 of the simulated per-request latency (queue wait +
  batch service, over a sliding window of the most recent requests so a
  long-running server's memory stays bounded) and SLO miss counts;
* scheduler policy counters: per-model admission rejections and
  deferrals, the high-water queue depth, per-request deadline misses
  (finish past arrival + SLO), and precision-autoswitch activity
  (switched batches, switch rate, mean modeled accuracy given up);
* cold-start counters: plans compiled off-loop by worker loops after
  traffic arrived (and the wall-clock stall those dispatches absorbed),
  plus plans pre-compiled by ``start(prewarm=True)`` -- the one
  deliberate exception to the simulated-time rule, because compile
  stall is a wall-clock property of the process, not of the model;
* placement telemetry: per-model arrival-rate windows (the demand
  signal replication decisions consume), replica-count gauges, per
  pipeline-stage service counters, rebalance counters, and two
  invariant guards -- ``dropped_requests`` and ``reordered_dispatches``
  -- that must stay zero through any number of placement swaps;
* fault-tolerance counters from the multi-process cluster layer
  (:mod:`repro.serve.cluster`): request retries, batch failovers,
  per-worker crash / restart / heartbeat-timeout tallies, and damaged
  plan-store lines recovered at load;
* plan-cache (incl. persistence) and autotune-cache hit rates, pulled
  in at report time.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..core import backends
from ..kernels.autotune import AutotuneCacheStats
from ..kernels.autotune import cache_stats as autotune_cache_stats
from .plan_cache import PlanCache

__all__ = [
    "percentile",
    "WorkerMetrics",
    "StageMetrics",
    "ServerMetrics",
    "METRICS_SCHEMA_VERSION",
]

#: Version stamped into every :meth:`ServerMetrics.snapshot` so report
#: tooling can detect shape drift instead of mis-keying silently.  The
#: unstamped pre-observability shape counts as version 1; version 2
#: added the stamp itself plus the queue high-water mark; version 3
#: added the multi-process fault-tolerance counters (retries,
#: failovers, worker crashes/restarts, heartbeat timeouts, recovered
#: store lines); version 4 added the HTTP/WebSocket gateway counters
#: (connections, requests, bad requests, 503s, WS connections/messages,
#: backpressure waits, send-queue high water); version 5 added the
#: active kernel-backend identity (``kernel_backend``, its
#: ``kernel_backend_compiled`` flag, and the ``kernel_backend_
#: capabilities`` list) from :mod:`repro.core.backends`.  Bump on any
#: key addition, removal, or meaning change.
METRICS_SCHEMA_VERSION = 5

#: Sliding-window length for per-request latency percentiles.
DEFAULT_LATENCY_WINDOW = 10_000

#: Arrival stamps retained per model for the rate windows.
DEFAULT_ARRIVAL_WINDOW = 4_096


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample.

    ``q`` is in [0, 100].  Returns 0.0 for an empty sample so freshly
    started servers can render a report without special-casing.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = list(values)
    if not data:
        return 0.0
    return float(np.percentile(data, q))


@dataclass
class WorkerMetrics:
    """Counters of one (backend, device) worker.

    Scalar counters cover the full lifetime; ``request_latencies_us``
    holds only the last ``window`` requests (percentiles are over that
    sliding window) so memory stays bounded under sustained load.
    """

    worker: str
    window: int = DEFAULT_LATENCY_WINDOW
    requests: int = 0
    batches: int = 0
    slo_misses: int = 0
    deadline_misses: int = 0
    switched_batches: int = 0
    accuracy_delta_sum: float = 0.0
    occupancy_sum: float = 0.0
    queue_depth_sum: int = 0
    service_us_sum: float = 0.0
    request_latencies_us: deque[float] = field(init=False)
    batch_sizes: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.request_latencies_us = deque(maxlen=self.window)

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_sum / self.batches if self.batches else 0.0

    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depth_sum / self.batches if self.batches else 0.0

    @property
    def p50_latency_us(self) -> float:
        return percentile(self.request_latencies_us, 50)

    @property
    def p95_latency_us(self) -> float:
        return percentile(self.request_latencies_us, 95)

    @property
    def simulated_throughput_rps(self) -> float:
        """Requests over busy time -- the worker's service-rate ceiling."""
        if not self.service_us_sum:
            return 0.0
        return self.requests / (self.service_us_sum * 1e-6)


@dataclass
class StageMetrics:
    """Service counters of one pipeline stage on one worker."""

    model: str
    stage: int
    worker: str
    batches: int = 0
    requests: int = 0
    service_us_sum: float = 0.0

    @property
    def mean_service_us(self) -> float:
        return self.service_us_sum / self.batches if self.batches else 0.0


class ServerMetrics:
    """Aggregated serving counters, keyed by worker name.

    The autotune cache is process-global; call :meth:`mark_autotune_baseline`
    (the server does this on first ``start()``) so the report shows the
    delta attributable to this server's traffic rather than whole-process
    counters.  The baseline is marked once per server lifetime: a
    ``stop()``/``start()`` cycle must keep accumulating, not silently
    zero the history.
    """

    def __init__(self) -> None:
        self.workers: dict[str, WorkerMetrics] = {}
        self.rejected: dict[str, int] = {}
        self.deferred: dict[str, int] = {}
        self.max_queue_depth_seen: int = 0
        #: Plans compiled off-loop by worker loops after traffic arrived.
        self.cold_compiles: int = 0
        #: Worker-loop iterations that hit a cold key and went async.
        self.cold_dispatches: int = 0
        #: Wall-clock microseconds those dispatches waited on compilation
        #: (the event loop kept running; only the cold batch stalled).
        self.compile_stall_us: float = 0.0
        #: Plans compiled by ``start(prewarm=True)`` before traffic.
        self.prewarmed_plans: int = 0
        #: Wall-clock microseconds the prewarm pass took.
        self.prewarm_us: float = 0.0
        #: Per-model arrival stamps (simulated us), newest last -- the
        #: windowed demand signal placement decisions consume.
        self.arrivals: dict[str, deque[float]] = {}
        #: Pipeline-stage service counters, keyed (model, stage, worker).
        self.stages: dict[tuple[str, int, str], StageMetrics] = {}
        #: Placement epoch of the live assignment (0 = initial).
        self.placement_epoch: int = 0
        #: Rebalances that actually swapped the placement.
        self.rebalances: int = 0
        #: Replica slots added / removed across all rebalances.
        self.replica_adds: int = 0
        self.replica_removes: int = 0
        #: Replica-count gauge per model, refreshed at each swap.
        self.replica_counts: dict[str, int] = {}
        #: Invariant guards: both must stay zero through any number of
        #: placement swaps (CI fails the placement experiment otherwise).
        self.dropped_requests: int = 0
        self.reordered_dispatches: int = 0
        #: Fault-tolerance counters (the multi-process cluster layer):
        #: request re-dispatches after a worker failure, batches failed
        #: over to a surviving replica, per-worker crash / restart
        #: tallies, heartbeat timeouts that declared a worker dead, and
        #: damaged plan-store lines skipped at load.
        self.retries: int = 0
        self.failovers: int = 0
        self.worker_crashes: dict[str, int] = {}
        self.worker_restarts: dict[str, int] = {}
        self.heartbeat_timeouts: dict[str, int] = {}
        self.store_recovered_lines: int = 0
        #: HTTP/WebSocket gateway counters (:mod:`repro.serve.http`):
        #: connections accepted, HTTP requests served, malformed
        #: requests answered 400, requests/connections refused 503
        #: while draining, WebSocket upgrades, results streamed over
        #: WebSockets, times a WS reader deferred because a client's
        #: bounded send queue was full, and the largest send-queue
        #: depth any client ever reached (must stay <= the configured
        #: bound -- the backpressure regression test pins this).
        self.gateway_connections: int = 0
        self.gateway_http_requests: int = 0
        self.gateway_bad_requests: int = 0
        self.gateway_unavailable: int = 0
        self.ws_connections: int = 0
        self.ws_messages_streamed: int = 0
        self.ws_backpressure_waits: int = 0
        self.ws_send_queue_high_water: int = 0
        #: Highest dispatched arrival stamp per model (reorder guard).
        self._dispatch_watermark: dict[str, float] = {}
        self._autotune_baseline: AutotuneCacheStats | None = None

    # ------------------------------------------------------------------
    # admission / queue counters (server-level, keyed by model)
    # ------------------------------------------------------------------
    def record_rejection(self, model: str) -> None:
        """One request shed by the admission policy."""
        self.rejected[model] = self.rejected.get(model, 0) + 1

    def record_deferral(self, model: str) -> None:
        """One request parked by the admission policy's defer mode."""
        self.deferred[model] = self.deferred.get(model, 0) + 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the admitted queue."""
        if depth > self.max_queue_depth_seen:
            self.max_queue_depth_seen = depth

    # ------------------------------------------------------------------
    # cold-start counters (server-level)
    # ------------------------------------------------------------------
    def record_cold_compile(self, plans: int, stall_us: float) -> None:
        """One worker-loop dispatch that found cold keys: ``plans`` were
        compiled off-loop while ``stall_us`` of wall time passed before
        that batch could dispatch (other queues kept being served)."""
        self.cold_compiles += plans
        self.cold_dispatches += 1
        self.compile_stall_us += stall_us

    def record_prewarm(self, plans: int, elapsed_us: float) -> None:
        """One ``start(prewarm=True)`` pass that compiled ``plans``."""
        self.prewarmed_plans += plans
        self.prewarm_us += elapsed_us

    # ------------------------------------------------------------------
    # placement telemetry (server-level)
    # ------------------------------------------------------------------
    def record_arrival(
        self, model: str, arrival_us: float,
        window: int = DEFAULT_ARRIVAL_WINDOW,
    ) -> None:
        """One request arrival (before admission -- sheds count as demand)."""
        q = self.arrivals.get(model)
        if q is None:
            q = self.arrivals[model] = deque(maxlen=window)
        q.append(arrival_us)

    def arrival_stats(
        self, model: str, now_us: float, window_us: float
    ) -> tuple[int, float]:
        """(count, rate in rps) of arrivals in ``(now - window, now]``.

        Stamps are nondecreasing for trace-driven traffic but a client
        may submit out of order; the window scan sorts defensively so
        the rate stays exact either way.
        """
        q = self.arrivals.get(model)
        if not q:
            return 0, 0.0
        stamps = sorted(q)
        lo = bisect.bisect_right(stamps, now_us - window_us)
        hi = bisect.bisect_right(stamps, now_us)
        count = hi - lo
        return count, count / (window_us * 1e-6)

    def record_stage(
        self, model: str, stage: int, worker: str,
        service_us: float, requests: int,
    ) -> None:
        """One pipeline-stage batch served on ``worker``."""
        key = (model, stage, worker)
        s = self.stages.get(key)
        if s is None:
            s = self.stages[key] = StageMetrics(
                model=model, stage=stage, worker=worker
            )
        s.batches += 1
        s.requests += requests
        s.service_us_sum += service_us

    def record_rebalance(
        self, epoch: int, adds: int, removes: int,
        replica_counts: dict[str, int],
    ) -> None:
        """One placement swap: the new epoch and its replica gauge."""
        self.placement_epoch = epoch
        self.rebalances += 1
        self.replica_adds += adds
        self.replica_removes += removes
        self.replica_counts = dict(replica_counts)

    def record_dispatch(
        self, model: str, first_arrival_us: float, last_arrival_us: float
    ) -> None:
        """One batch leaving a model queue, in pop order.

        Guards the placement invariant: dispatch order per model must
        follow arrival order even while replicas come and go.  A batch
        whose head precedes an already-dispatched arrival is a reorder
        -- unless the client submitted retroactively, which
        :meth:`note_out_of_order_submit` excuses.
        """
        watermark = self._dispatch_watermark.get(model)
        if watermark is not None and first_arrival_us < watermark:
            self.reordered_dispatches += 1
        self._dispatch_watermark[model] = max(
            watermark if watermark is not None else last_arrival_us,
            last_arrival_us,
        )

    def note_out_of_order_submit(self, model: str, arrival_us: float) -> None:
        """A client submitted an arrival stamp behind the queue tail.

        Serving that request later is the *client's* reordering, not the
        server's, so the reorder watermark rewinds to excuse it.
        """
        watermark = self._dispatch_watermark.get(model)
        if watermark is not None and arrival_us < watermark:
            self._dispatch_watermark[model] = arrival_us

    def record_dropped(self, count: int) -> None:
        """Requests left unresolved at drain -- must never happen."""
        self.dropped_requests += count

    # ------------------------------------------------------------------
    # fault tolerance (the multi-process cluster layer)
    # ------------------------------------------------------------------
    def record_failover(self, worker: str, requests: int) -> None:
        """One lost batch re-routed off ``worker``: ``requests`` of its
        in-flight requests were requeued for retry on a surviving
        replica (each counts one retry)."""
        self.failovers += 1
        self.retries += requests

    def record_worker_crash(self, worker: str) -> None:
        """One worker process (or simulated worker) found dead."""
        self.worker_crashes[worker] = self.worker_crashes.get(worker, 0) + 1

    def record_worker_restart(self, worker: str) -> None:
        """One crashed worker respawned by the coordinator."""
        self.worker_restarts[worker] = (
            self.worker_restarts.get(worker, 0) + 1
        )

    def record_heartbeat_timeout(self, worker: str) -> None:
        """One worker declared dead by heartbeat timeout (not EOF)."""
        self.heartbeat_timeouts[worker] = (
            self.heartbeat_timeouts.get(worker, 0) + 1
        )

    def record_store_recovery(self, lines: int) -> None:
        """Damaged plan-store lines skipped (and survived) at load."""
        self.store_recovered_lines += lines

    # ------------------------------------------------------------------
    # HTTP/WebSocket gateway (repro.serve.http)
    # ------------------------------------------------------------------
    def record_gateway_connection(self) -> None:
        """One TCP connection accepted by the gateway."""
        self.gateway_connections += 1

    def record_gateway_request(self) -> None:
        """One HTTP request parsed and routed (any status)."""
        self.gateway_http_requests += 1

    def record_gateway_bad_request(self) -> None:
        """One malformed request answered 400 (connection survived
        or was closed cleanly -- never a gateway crash)."""
        self.gateway_bad_requests += 1

    def record_gateway_unavailable(self) -> None:
        """One request or connection refused 503 while draining."""
        self.gateway_unavailable += 1

    def record_ws_connection(self) -> None:
        """One successful WebSocket upgrade on ``/v1/stream``."""
        self.ws_connections += 1

    def record_ws_streamed(self) -> None:
        """One result message streamed to a WebSocket client."""
        self.ws_messages_streamed += 1

    def record_ws_backpressure_wait(self) -> None:
        """One deferral: a client's send queue was at its bound, so
        the gateway stopped reading that client until it drained."""
        self.ws_backpressure_waits += 1

    def record_ws_send_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of any client's send queue."""
        if depth > self.ws_send_queue_high_water:
            self.ws_send_queue_high_water = depth

    @property
    def total_worker_crashes(self) -> int:
        return sum(self.worker_crashes.values())

    @property
    def total_worker_restarts(self) -> int:
        return sum(self.worker_restarts.values())

    @property
    def total_heartbeat_timeouts(self) -> int:
        return sum(self.heartbeat_timeouts.values())

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())

    @property
    def total_deferred(self) -> int:
        return sum(self.deferred.values())

    @property
    def total_stage_batches(self) -> int:
        return sum(s.batches for s in self.stages.values())

    def stage_service_us(self, model: str) -> dict[int, float]:
        """Total per-stage service microseconds of one sharded model."""
        out: dict[int, float] = {}
        for (m, stage, _w), s in self.stages.items():
            if m == model:
                out[stage] = out.get(stage, 0.0) + s.service_us_sum
        return dict(sorted(out.items()))

    def snapshot(self) -> dict[str, "float | str"]:
        """Scalar lifetime counters, for delta assertions across restarts.

        Includes the admission policy's rejection/deferral totals and a
        ``schema`` stamp (:data:`METRICS_SCHEMA_VERSION`) so downstream
        report tooling can detect shape drift before keying into it.
        Since v5 the (string-valued) kernel-backend identity rides
        along: which :mod:`repro.core.backends` tier executes the packed
        hot loops in this process, whether it is compiled, and the
        capability flags it advertises (``/``-joined, stable order).
        """
        active = backends.get_backend()
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "kernel_backend": active.name,
            "kernel_backend_compiled": float(active.compiled),
            "kernel_backend_capabilities": "/".join(
                c for c in backends.CAPABILITIES if c in active.capabilities
            ),
            "requests": self.total_requests,
            "batches": self.total_batches,
            "rejected": self.total_rejected,
            "deferred": self.total_deferred,
            "max_queue_depth": self.max_queue_depth_seen,
            "deadline_misses": self.total_deadline_misses,
            "switched_batches": self.total_switched_batches,
            "cold_compiles": self.cold_compiles,
            "cold_dispatches": self.cold_dispatches,
            "prewarmed_plans": self.prewarmed_plans,
            "rebalances": self.rebalances,
            "replica_adds": self.replica_adds,
            "replica_removes": self.replica_removes,
            "stage_batches": self.total_stage_batches,
            "dropped_requests": self.dropped_requests,
            "reordered_dispatches": self.reordered_dispatches,
            "retries": self.retries,
            "failovers": self.failovers,
            "worker_crashes": self.total_worker_crashes,
            "worker_restarts": self.total_worker_restarts,
            "heartbeat_timeouts": self.total_heartbeat_timeouts,
            "store_recovered_lines": self.store_recovered_lines,
            "gateway_connections": self.gateway_connections,
            "gateway_http_requests": self.gateway_http_requests,
            "gateway_bad_requests": self.gateway_bad_requests,
            "gateway_unavailable": self.gateway_unavailable,
            "ws_connections": self.ws_connections,
            "ws_messages_streamed": self.ws_messages_streamed,
            "ws_backpressure_waits": self.ws_backpressure_waits,
            "ws_send_queue_high_water": self.ws_send_queue_high_water,
            "autotune_hits": self.autotune_stats().hits,
        }

    @property
    def has_autotune_baseline(self) -> bool:
        return self._autotune_baseline is not None

    def mark_autotune_baseline(self) -> None:
        """Snapshot the global autotune counters as this server's zero."""
        self._autotune_baseline = autotune_cache_stats()

    def autotune_stats(self) -> AutotuneCacheStats:
        """Autotune counters since the baseline (global if never marked)."""
        now = autotune_cache_stats()
        base = self._autotune_baseline
        if base is None:
            return now
        return AutotuneCacheStats(
            hits=max(0, now.hits - base.hits),
            misses=max(0, now.misses - base.misses),
            entries=now.entries,
        )

    def worker(self, name: str) -> WorkerMetrics:
        if name not in self.workers:
            self.workers[name] = WorkerMetrics(worker=name)
        return self.workers[name]

    def record_batch(
        self,
        worker: str,
        *,
        batch_size: int,
        requests: int,
        queue_depth: int,
        service_us: float,
        request_latencies_us: list[float],
        meets_slo: bool,
        deadline_misses: int = 0,
        switched: bool = False,
        accuracy_delta: float = 0.0,
    ) -> None:
        w = self.worker(worker)
        w.batches += 1
        w.requests += requests
        w.batch_sizes[batch_size] = w.batch_sizes.get(batch_size, 0) + 1
        w.occupancy_sum += requests / batch_size
        w.queue_depth_sum += queue_depth
        w.service_us_sum += service_us
        w.request_latencies_us.extend(request_latencies_us)
        if not meets_slo:
            w.slo_misses += 1
        w.deadline_misses += deadline_misses
        if switched:
            w.switched_batches += 1
            w.accuracy_delta_sum += accuracy_delta

    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(w.requests for w in self.workers.values())

    @property
    def total_batches(self) -> int:
        return sum(w.batches for w in self.workers.values())

    @property
    def total_deadline_misses(self) -> int:
        return sum(w.deadline_misses for w in self.workers.values())

    @property
    def total_switched_batches(self) -> int:
        return sum(w.switched_batches for w in self.workers.values())

    @property
    def switch_rate(self) -> float:
        """Fraction of dispatched batches served at a downgraded pair."""
        batches = self.total_batches
        return self.total_switched_batches / batches if batches else 0.0

    @property
    def mean_accuracy_delta(self) -> float:
        """Mean modeled accuracy given up per *switched* batch."""
        switched = self.total_switched_batches
        if not switched:
            return 0.0
        total = sum(w.accuracy_delta_sum for w in self.workers.values())
        return total / switched

    def batch_size_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for w in self.workers.values():
            for b, n in w.batch_sizes.items():
                hist[b] = hist.get(b, 0) + n
        return dict(sorted(hist.items()))

    def report(self, plan_cache: PlanCache | None = None) -> str:
        """Human-readable metrics summary (simulated milliseconds)."""
        lines = [
            f"requests served : {self.total_requests}",
            f"batches         : {self.total_batches}",
            f"batch sizes     : "
            + (", ".join(
                f"{b}x{n}" for b, n in self.batch_size_histogram().items()
            ) or "-"),
        ]
        lines.append(
            f"admission       : rejected {self.total_rejected}, "
            f"deferred {self.total_deferred}, "
            f"max queue depth {self.max_queue_depth_seen}"
        )
        lines.append(
            f"autoswitch      : {self.total_switched_batches}/"
            f"{self.total_batches} batches switched "
            f"(rate {self.switch_rate:.3f}), "
            f"mean accuracy delta {self.mean_accuracy_delta:.4f}"
        )
        lines.append(f"deadline misses : {self.total_deadline_misses}")
        lines.append(
            f"placement       : epoch {self.placement_epoch}, "
            f"{self.rebalances} rebalances "
            f"(+{self.replica_adds}/-{self.replica_removes} replicas), "
            f"dropped {self.dropped_requests}, "
            f"reordered {self.reordered_dispatches}"
        )
        if self.replica_counts:
            gauge = ", ".join(
                f"{m}x{n}" for m, n in sorted(self.replica_counts.items())
            )
            lines.append(f"replicas        : {gauge}")
        lines.append(
            f"fault tolerance : {self.total_worker_crashes} crashes "
            f"({self.total_heartbeat_timeouts} by heartbeat), "
            f"{self.total_worker_restarts} restarts, "
            f"{self.failovers} failovers, {self.retries} retries, "
            f"{self.store_recovered_lines} recovered store lines"
        )
        if self.gateway_connections or self.ws_connections:
            lines.append(
                f"gateway         : {self.gateway_connections} conns, "
                f"{self.gateway_http_requests} http reqs "
                f"({self.gateway_bad_requests} bad, "
                f"{self.gateway_unavailable} unavailable), "
                f"{self.ws_connections} ws conns, "
                f"{self.ws_messages_streamed} streamed, "
                f"{self.ws_backpressure_waits} backpressure waits "
                f"(send-queue high water "
                f"{self.ws_send_queue_high_water})"
            )
        for key in sorted(self.stages):
            s = self.stages[key]
            lines.append(
                f"  stage {s.model}[{s.stage}]@{s.worker}: "
                f"{s.requests} reqs / {s.batches} batches, "
                f"mean {s.mean_service_us / 1e3:.3f} ms"
            )
        lines.append(
            f"cold start      : {self.cold_compiles} off-loop compiles over "
            f"{self.cold_dispatches} cold dispatches "
            f"({self.compile_stall_us / 1e3:.1f} ms wall), "
            f"{self.prewarmed_plans} prewarmed plans "
            f"({self.prewarm_us / 1e3:.1f} ms wall)"
        )
        for name in sorted(self.workers):
            w = self.workers[name]
            lines.append(
                f"  {name}: {w.requests} reqs / {w.batches} batches, "
                f"p50 {w.p50_latency_us / 1e3:.3f} ms, "
                f"p95 {w.p95_latency_us / 1e3:.3f} ms, "
                f"occupancy {w.mean_occupancy:.2f}, "
                f"mean queue {w.mean_queue_depth:.1f}, "
                f"slo-miss batches {w.slo_misses}"
            )
        if plan_cache is not None:
            s = plan_cache.stats()
            lines.append(
                f"plan cache      : hit rate {s.hit_rate:.3f} "
                f"({s.hits}/{s.lookups} lookups, {s.entries} plans, "
                f"{s.evictions} evictions)"
            )
            lines.append(
                f"plan compiles   : {s.compiles} "
                f"({s.inloop_compiles} in-loop, "
                f"{s.offloaded_compiles} off-loop, "
                f"{s.coalesced} coalesced waits, "
                f"{s.compile_us / 1e3:.1f} ms wall); "
                f"persisted {s.persisted_entries} loaded / "
                f"{s.persisted_hits} hits"
            )
        a = self.autotune_stats()
        since = " since start" if self._autotune_baseline is not None else ""
        lines.append(
            f"autotune cache  : hit rate {a.hit_rate:.3f} "
            f"({a.hits}/{a.lookups} lookups{since}, {a.entries} entries)"
        )
        return "\n".join(lines)
