"""Fault-tolerant multi-process scale-out for the serving stack.

This module grows the single-process :class:`~repro.serve.server
.InferenceServer` simulation into an actual *cluster*: a
:class:`ClusterCoordinator` owns the request queues, runs the
:class:`~repro.serve.placement.PlacementController` across N named
workers, and routes batches to them -- where a worker is either a
deterministic in-process simulation (``mode="sim"``) or a **real
subprocess** (``mode="process"``) speaking the length-prefixed JSON
protocol of :mod:`repro.serve.ipc` over its stdin/stdout pipes.  Both
modes share the persistent :class:`~repro.serve.plan_cache
.PlanCacheStore`: the coordinator prewarms every candidate plan into
``cache_dir`` and each worker subprocess loads the same store, so no
process ever replans what another already priced.

Failure handling, the point of the module:

* **crash detection** -- a subprocess worker that dies (kill -9, OOM,
  bug) surfaces as EOF or a torn frame on its pipe; a wedged-but-alive
  one is caught by the coordinator's heartbeat pings
  (``heartbeat_timeout_s`` without any frame -> declared dead and
  killed).  Simulated workers crash at the exact simulated instants a
  :class:`FaultPlan` scripts.
* **bounded retry with failover** -- the in-flight requests of a dead
  worker's batch are requeued at the head of their model queue (they
  are the earliest arrivals) and re-dispatched to a surviving replica,
  at most ``max_attempts`` dispatches per request; exhausted requests
  fail loudly with :class:`ClusterError` and count as
  ``dropped_requests``.
* **exactly-once completion** -- a request's future resolves at most
  once; retries never re-record the dispatch-order watermark (the first
  dispatch committed the order), so failover can never masquerade as a
  reorder, and the result payload is a pure function of (model,
  backend, device, request id, batch-1 price) -- byte-identical no
  matter which replica finally served it, which batch coalesced it, or
  how many times it was retried.
* **restart** -- crashed workers optionally respawn (``max_restarts``
  per worker): simulated workers come back ``restart_delay_us`` later
  on the simulated clock; subprocess workers are re-spawned and reload
  their plans from the shared store.
* **graceful drain** -- ``stop()`` lets every queued and in-flight
  request complete (failing over if a worker dies mid-drain) before
  shutting worker processes down with a ``shutdown`` frame.

Determinism: in sim mode nothing sleeps and nothing reads the wall
clock -- crashes, slowdowns and store corruption all happen at scripted
simulated instants -- so every failure schedule replays bit-identically
and the invariant suite (zero ``dropped_requests``, zero
``reordered_dispatches``, byte-identical payloads vs the fault-free
run) holds without a single wall-clock sleep.  Process mode keeps the
same simulated-time accounting (service comes from the worker's priced
plan, not elapsed wall time); only crash *detection* is wall-clock,
because real processes die in real time.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import itertools
import os
import sys
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..core.types import PrecisionPair
from ..nn.engine import APNNBackend, InferenceEngine
from ..obs import NULL_TRACER, Tracer
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..tensorcore.device import RTX3090, DeviceSpec
from .ipc import (
    IPC_SCHEMA_VERSION,
    canonical_json,
    read_frame,
    read_frame_async,
    write_frame,
    write_frame_async,
)
from .metrics import ServerMetrics
from .placement import PlacementController, PlacementPolicy
from .plan_cache import PlanCache, PlanCacheStore, backend_key
from .server import ServerDraining

__all__ = [
    "ModelSpec",
    "FaultEvent",
    "FaultPlan",
    "ClusterPolicy",
    "ClusterResult",
    "ClusterError",
    "WorkerCrashed",
    "ClusterCoordinator",
    "result_payload",
]

_FAULT_KINDS = ("crash", "slow", "corrupt_store")

#: Batch sizes the coordinator considers (largest candidate that the
#: visible backlog fills wins); shared default with the dynamic batcher.
DEFAULT_CLUSTER_BATCHES = (1, 2, 4, 8)


# ----------------------------------------------------------------------
# model specs (serializable: workers rebuild models from these)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelSpec:
    """A model as data, so worker subprocesses can rebuild it.

    Subprocess workers cannot receive live :class:`~repro.nn.module
    .Sequential` objects over a JSON pipe; they receive specs and call
    :meth:`build`.  Construction is deterministic (seeded RNG, fixed
    architecture per ``kind``), so the coordinator and every worker
    derive identical layer geometry -- and therefore identical plan
    keys and identical plan prices -- from the same spec.
    """

    kind: str                          #: "micro" | "alexnet" | "resnet18"
    name: str
    seed: int = 0
    input_shape: tuple[int, int, int] = (3, 16, 16)
    num_classes: int = 10

    def __post_init__(self) -> None:
        if self.kind not in ("micro", "alexnet", "resnet18"):
            raise ValueError(f"unknown model spec kind {self.kind!r}")
        if len(self.input_shape) != 3:
            raise ValueError(
                f"input_shape must be (C, H, W), got {self.input_shape}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "seed": self.seed,
            "input_shape": list(self.input_shape),
            "num_classes": self.num_classes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ModelSpec":
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            seed=int(data["seed"]),
            input_shape=tuple(data["input_shape"]),
            num_classes=int(data["num_classes"]),
        )

    def build(self):
        """Construct the model (memoized per spec -- read-only planning
        input, shareable across engines and tests)."""
        return _build_model(self)


_model_cache: dict[ModelSpec, object] = {}


def _build_model(spec: ModelSpec):
    if spec in _model_cache:
        return _model_cache[spec]
    if spec.kind == "micro":
        import numpy as _np

        from ..nn.layers import (
            Conv2d, Flatten, Linear, MaxPool2d, Quantize, ReLU,
        )
        from ..nn.module import Sequential

        r = _np.random.default_rng(spec.seed)
        c, h = 16, spec.input_shape[1]
        model = Sequential(
            [
                Conv2d(spec.input_shape[0], c, 3, 1, 1, rng=r, name="c1"),
                ReLU(),
                Quantize(2),
                Conv2d(c, c, 3, 1, 1, rng=r, name="c2"),
                ReLU(),
                MaxPool2d(2, 2, name="p1"),
                Quantize(2),
                Flatten(),
                Linear(c * (h // 2) * (h // 2), spec.num_classes,
                       rng=r, name="fc"),
            ],
            name=spec.name,
        )
    elif spec.kind == "alexnet":
        from ..nn import alexnet

        model = alexnet(
            num_classes=spec.num_classes, input_size=spec.input_shape[1]
        )
    else:
        from ..nn import resnet18

        model = resnet18(
            num_classes=spec.num_classes, input_size=spec.input_shape[1]
        )
    _model_cache[spec] = model
    return model


# ----------------------------------------------------------------------
# fault injection plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One scripted failure at a simulated instant.

    ``kind``:

    * ``"crash"`` -- ``worker`` dies at ``at_us``: before taking work if
      idle then, mid-batch (losing the batch to failover) if busy.
    * ``"slow"`` -- from ``at_us`` on, ``worker``'s modeled service time
      is multiplied by ``factor`` (a degraded replica, not a dead one).
    * ``"corrupt_store"`` -- at ``at_us`` the shared plan store gains a
      torn trailing line, exactly what a crash during an append leaves
      behind; the next load must skip it and count it recovered.
    """

    kind: str
    at_us: float
    worker: str = ""
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {_FAULT_KINDS}"
            )
        if self.at_us < 0:
            raise ValueError(f"at_us must be >= 0, got {self.at_us}")
        if self.kind != "corrupt_store" and not self.worker:
            raise ValueError(f"{self.kind} fault needs a worker name")
        if self.kind == "slow" and self.factor < 1.0:
            raise ValueError(
                f"slow factor must be >= 1 (a slowdown), got {self.factor}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic failure schedule for one simulated cluster run.

    Pure data: the coordinator consumes it in sim mode only (real
    subprocesses are failed with real signals via
    :meth:`ClusterCoordinator.kill_worker`).  Build with the named
    constructors::

        FaultPlan.of(
            FaultPlan.crash("worker-1", at_us=800.0),
            FaultPlan.slow("worker-0", at_us=0.0, factor=4.0),
            FaultPlan.corrupt_store(at_us=1200.0),
        )
    """

    events: tuple[FaultEvent, ...] = ()

    @staticmethod
    def crash(worker: str, at_us: float) -> FaultEvent:
        return FaultEvent(kind="crash", at_us=at_us, worker=worker)

    @staticmethod
    def slow(worker: str, at_us: float, factor: float) -> FaultEvent:
        return FaultEvent(
            kind="slow", at_us=at_us, worker=worker, factor=factor
        )

    @staticmethod
    def corrupt_store(at_us: float) -> FaultEvent:
        return FaultEvent(kind="corrupt_store", at_us=at_us)

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        return cls(events=tuple(events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def crash_times(self, worker: str) -> tuple[float, ...]:
        return tuple(sorted(
            e.at_us for e in self.events
            if e.kind == "crash" and e.worker == worker
        ))

    def slow_factor(self, worker: str, at_us: float) -> float:
        """The worker's service multiplier at ``at_us`` (latest slow
        event at or before that instant wins; 1.0 when none)."""
        factor = 1.0
        best = -1.0
        for e in self.events:
            if (
                e.kind == "slow" and e.worker == worker
                and best < e.at_us <= at_us
            ):
                best = e.at_us
                factor = e.factor
        return factor

    def corruption_times(self) -> tuple[float, ...]:
        return tuple(sorted(
            e.at_us for e in self.events if e.kind == "corrupt_store"
        ))


# ----------------------------------------------------------------------
# policy / results / errors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterPolicy:
    """Fault-tolerance knobs of one coordinator.

    ``max_attempts`` bounds dispatches *per request* (first try plus
    retries); ``max_restarts`` bounds respawns *per worker name*.  The
    heartbeat settings only matter in process mode -- crash detection of
    real processes is inherently wall-clock -- and are tuned so an idle
    worker pongs many times per timeout.
    """

    max_attempts: int = 3
    restart_crashed: bool = True
    max_restarts: int = 1
    restart_delay_us: float = 1_000.0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.restart_delay_us < 0:
            raise ValueError(
                f"restart_delay_us must be >= 0, got {self.restart_delay_us}"
            )
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat settings must be positive")


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one request served by the cluster.

    ``payload`` is the canonical-JSON result body
    (:func:`result_payload`): a pure function of what was computed, not
    of where or when -- the byte string the exactly-once and failover
    tests compare across replicas, retries, and whole runs.
    """

    request_id: int
    model: str
    worker: str
    attempts: int        #: dispatches this request took (1 = no retry)
    batch_size: int
    batch_requests: int
    arrival_us: float
    start_us: float
    finish_us: float
    payload: str

    @property
    def wait_us(self) -> float:
        return self.start_us - self.arrival_us

    @property
    def service_us(self) -> float:
        return self.finish_us - self.start_us

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0

    @property
    def retried(self) -> bool:
        return self.attempts > 1


class ClusterError(RuntimeError):
    """A request failed permanently (retry budget exhausted)."""


class WorkerCrashed(RuntimeError):
    """Internal: a worker died with this call in flight (retryable)."""


def result_payload(
    model: str, backend, device: DeviceSpec, unit_us: float, request_id: int
) -> str:
    """The canonical result body of one served request.

    Deliberately independent of batching, queueing, timing, replica
    identity and retry count: two dispatches of the same request on any
    replica at any time produce identical bytes, because the priced
    batch-1 total is a deterministic function of (model architecture,
    backend, device, calibration) and everything else here is identity.
    """
    return canonical_json({
        "backend": backend_key(backend),
        "device": device.name,
        "model": model,
        "request_id": request_id,
        "unit_us": unit_us,
    })


# ----------------------------------------------------------------------
# internal request / worker state
# ----------------------------------------------------------------------
@dataclass
class _ClusterRequest:
    request_id: int
    model: str
    arrival_us: float
    future: asyncio.Future = field(repr=False)
    attempts: int = 0    #: dispatches so far (incremented at each take)


@dataclass
class _WorkerState:
    """Coordinator-side bookkeeping of one named worker slot.

    ``generation`` increments at every crash; a worker-loop task carries
    the generation it was spawned for and exits when the state has moved
    on, so a stale loop (or a stale failover) can never act on a
    restarted worker.
    """

    name: str
    alive: bool = True
    generation: int = 0
    restarts: int = 0
    sim_free_at_us: float = 0.0
    crashes: deque = field(default_factory=deque)  #: sim crash instants
    transport: "_WorkerProcess | None" = None


# ----------------------------------------------------------------------
# subprocess transport (process mode)
# ----------------------------------------------------------------------
class _WorkerProcess:
    """One live worker subprocess: pipes, reader task, heartbeats.

    ``call()`` is request/response over sequence numbers; the reader
    task demultiplexes replies and pongs.  Any EOF or torn frame fails
    every pending call with :class:`WorkerCrashed` and fires
    ``on_death`` exactly once -- the coordinator's crash path -- whether
    the process was killed, crashed, or timed out and was killed by the
    heartbeat monitor here.
    """

    def __init__(
        self,
        name: str,
        hello: dict,
        policy: ClusterPolicy,
        metrics: ServerMetrics,
        on_death,
    ) -> None:
        self.name = name
        self._hello = hello
        self._policy = policy
        self._metrics = metrics
        self._on_death = on_death
        self.proc: asyncio.subprocess.Process | None = None
        self.ready: dict = {}
        self._seq = itertools.count()
        self._pending: dict[int, asyncio.Future] = {}
        self._tasks: list[asyncio.Task] = []
        self._closing = False
        self._dead = False
        self._last_contact = 0.0

    async def start(self) -> None:
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(src_root) + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else str(src_root)
        )
        # -c instead of -m: the package re-exports this module, so
        # runpy's re-execution under -m would warn about the duplicate.
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable, "-c",
            "import sys; from repro.serve.cluster import _worker_main; "
            "sys.exit(_worker_main())",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        await write_frame_async(self.proc.stdin, self._hello)
        ready = await read_frame_async(self.proc.stdout)
        if ready is None or ready.get("type") != "ready":
            raise RuntimeError(
                f"worker {self.name} failed its handshake: {ready!r}"
            )
        self.ready = ready
        self._last_contact = time.monotonic()  # repro: allow-wall-clock -- process-mode heartbeat bookkeeping
        self._tasks = [
            asyncio.create_task(
                self._read_loop(), name=f"cluster-read-{self.name}"
            ),
            asyncio.create_task(
                self._heartbeat_loop(), name=f"cluster-hb-{self.name}"
            ),
        ]

    # ------------------------------------------------------------------
    async def call(self, message: dict) -> dict:
        """Send one frame and await its reply (same ``seq``)."""
        if self._dead or self.proc is None:
            raise WorkerCrashed(f"worker {self.name} is dead")
        seq = next(self._seq)
        message = dict(message, seq=seq)
        fut = asyncio.get_running_loop().create_future()
        self._pending[seq] = fut
        try:
            await write_frame_async(self.proc.stdin, message)
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._pending.pop(seq, None)
            raise WorkerCrashed(
                f"worker {self.name} pipe closed mid-send"
            ) from exc
        return await fut

    def kill(self) -> None:
        """SIGKILL the worker process (the tests' mid-batch murder)."""
        if self.proc is not None and self.proc.returncode is None:
            self.proc.kill()

    async def close(self) -> None:
        """Graceful shutdown: drain frame, bounded wait, then kill."""
        self._closing = True
        if self.proc is not None and self.proc.returncode is None:
            try:
                await asyncio.wait_for(
                    self.call({"type": "shutdown"}), timeout=5.0
                )
            except (WorkerCrashed, asyncio.TimeoutError, OSError):  # repro: allow-swallowed-exception -- best-effort shutdown of a dying subprocess
                pass
            try:
                await asyncio.wait_for(self.proc.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                self.kill()
                await self.proc.wait()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # repro: allow-swallowed-exception -- reaping cancelled reader/heartbeat tasks
                pass
        self._tasks = []

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self.proc is not None
        try:
            while True:
                msg = await read_frame_async(self.proc.stdout)
                if msg is None:
                    break
                self._last_contact = time.monotonic()  # repro: allow-wall-clock -- real subprocess liveness, not sim time
                if msg.get("type") == "pong":
                    continue
                seq = msg.get("seq")
                fut = self._pending.pop(seq, None)
                if fut is not None and not fut.done():
                    fut.set_result(msg)
        except Exception:  # repro: allow-swallowed-exception -- torn frame or closed pipe: same as EOF below
            pass
        self._mark_dead()

    async def _heartbeat_loop(self) -> None:
        """Ping on an interval; declare death on silence past timeout.

        A worker busy pricing a batch does not pong (its loop is
        single-threaded on purpose -- a worker that cannot serve *is*
        degraded), so the timeout must exceed any honest batch; the
        slow-worker tests shrink it to catch a wedged worker quickly.
        """
        assert self.proc is not None
        while not self._closing and not self._dead:
            await asyncio.sleep(self._policy.heartbeat_interval_s)
            if self._closing or self._dead:
                return
            silent_s = time.monotonic() - self._last_contact  # repro: allow-wall-clock -- heartbeat staleness is wall time
            if silent_s > self._policy.heartbeat_timeout_s:
                self._metrics.record_heartbeat_timeout(self.name)
                self.kill()  # EOF lands in the read loop -> death path
                return
            try:
                await write_frame_async(
                    self.proc.stdin, {"type": "ping"}
                )
            except (ConnectionError, RuntimeError, OSError):
                return  # pipe gone; the read loop handles it

    def _mark_dead(self) -> None:
        if self._dead:
            return
        self._dead = True
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(
                    WorkerCrashed(f"worker {self.name} died in flight")
                )
        self._pending.clear()
        if not self._closing:
            self._on_death(self)


# ----------------------------------------------------------------------
# worker subprocess entry point
# ----------------------------------------------------------------------
def _worker_main() -> int:
    """Serve batches over stdin/stdout frames until shutdown or EOF.

    The loop is deliberately sequential and blocking: one frame in, one
    frame out.  All pricing state (engines, plan cache over the shared
    store) is rebuilt from the ``hello`` message, so a respawned worker
    is indistinguishable from the original -- same plan keys, same
    totals, same result bytes.
    """
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # Frames own the real stdout; redirect stray prints from model /
    # kernel code to stderr so they can never corrupt the stream.
    sys.stdout = sys.stderr

    hello = read_frame(stdin)
    if hello is None:
        return 0
    if (
        hello.get("type") != "hello"
        or hello.get("ipc") != IPC_SCHEMA_VERSION
    ):
        write_frame(stdout, {
            "type": "error", "seq": hello.get("seq"),
            "message": f"bad hello (ipc {hello.get('ipc')!r} "
                       f"!= {IPC_SCHEMA_VERSION})",
        })
        return 1
    name = hello["worker"]
    if hello["device"] != RTX3090.name:
        write_frame(stdout, {
            "type": "error", "seq": hello.get("seq"),
            "message": f"unknown device {hello['device']!r}",
        })
        return 1
    backend = APNNBackend(PrecisionPair.parse(hello["pair"]))
    device = RTX3090
    cache_dir = hello.get("cache_dir")
    cache = (
        PlanCache(store=PlanCacheStore(cache_dir))
        if cache_dir else PlanCache()
    )
    specs = {
        n: ModelSpec.from_dict(d) for n, d in hello["models"].items()
    }
    engines = {
        n: InferenceEngine(spec.build(), backend, device)
        for n, spec in specs.items()
    }
    write_frame(stdout, {
        "type": "ready",
        "worker": name,
        "pid": os.getpid(),
        "plans_loaded": len(cache),
        "store_recovered_lines": cache.stats().store_recovered_lines,
    })

    slow_sleep_s = float(hello.get("slow_sleep_s", 0.0))
    while True:
        msg = read_frame(stdin)
        if msg is None:
            return 0  # coordinator hung up: treat as shutdown
        mtype = msg.get("type")
        if mtype == "ping":
            write_frame(stdout, {"type": "pong", "seq": msg.get("seq")})
        elif mtype == "set_slow":
            # Test hook: wedge this worker (sleep before every reply) so
            # the heartbeat monitor has something real to catch.
            slow_sleep_s = float(msg["seconds"])
            write_frame(stdout, {"type": "ok", "seq": msg.get("seq")})
        elif mtype == "batch":
            model = msg["model"]
            batch_size = int(msg["batch_size"])
            try:
                engine = engines[model]
                shape = specs[model].input_shape
                service_us = cache.total_us(engine, batch_size, shape)
                unit_us = cache.total_us(engine, 1, shape)
                results = [
                    {
                        "request_id": rid,
                        "payload": result_payload(
                            model, backend, device, unit_us, rid
                        ),
                    }
                    for rid in msg["requests"]
                ]
            except Exception as exc:
                write_frame(stdout, {
                    "type": "error", "seq": msg.get("seq"),
                    "message": f"{type(exc).__name__}: {exc}",
                })
                continue
            if slow_sleep_s > 0:
                time.sleep(slow_sleep_s)  # repro: allow-wall-clock -- fault-injection wedge hook in the real subprocess
            write_frame(stdout, {
                "type": "result",
                "seq": msg.get("seq"),
                "service_us": service_us,
                "compiles": cache.stats().compiles,
                "results": results,
            })
        elif mtype == "shutdown":
            write_frame(stdout, {"type": "bye", "seq": msg.get("seq")})
            return 0
        else:
            write_frame(stdout, {
                "type": "error", "seq": msg.get("seq"),
                "message": f"unknown message type {mtype!r}",
            })


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class ClusterCoordinator:
    """Routes requests over N workers with failover, retry and restart.

    The client surface mirrors :class:`~repro.serve.server
    .InferenceServer` (``await submit(model, arrival_us=...)``,
    ``start()`` / ``stop()``, a ``metrics`` registry, an optional
    ``tracer``), so the existing trace :func:`~repro.serve.trace.replay`
    drives a cluster unchanged.  Scheduling is FIFO per worker across
    the model queues its placement routes to it; batches take the
    largest ``candidate_batches`` entry the arrived-by-now backlog
    fills.

    ``mode="sim"`` executes by pricing plans in-process on the simulated
    clock, with a :class:`FaultPlan` scripting failures
    deterministically; ``mode="process"`` spawns one real Python
    subprocess per worker (see :func:`_worker_main`) and prices batches
    there, with real crash detection.  ``start()`` always prewarms every
    (model, candidate batch) plan, so worker subprocesses find a fully
    warm shared store and the sim path never compiles mid-dispatch.
    """

    def __init__(
        self,
        models: Mapping[str, ModelSpec],
        num_workers: int = 2,
        *,
        mode: str = "sim",
        policy: ClusterPolicy | None = None,
        placement: PlacementPolicy | None = None,
        faults: FaultPlan | None = None,
        pair: str | PrecisionPair = "w1a2",
        candidate_batches: Sequence[int] = DEFAULT_CLUSTER_BATCHES,
        cache_dir: str | Path | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        tracer: Tracer | None = None,
    ) -> None:
        if not models:
            raise ValueError("cluster needs at least one model")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if mode not in ("sim", "process"):
            raise ValueError(f"mode must be 'sim' or 'process', got {mode!r}")
        self.mode = mode
        self.policy = policy if policy is not None else ClusterPolicy()
        self.faults = faults if faults is not None else FaultPlan()
        if self.faults and mode == "process":
            raise ValueError(
                "FaultPlan schedules simulated instants; in process mode "
                "inject real faults via kill_worker()/set_slow()"
            )
        if placement is not None and placement.shard:
            raise ValueError(
                "the cluster layer does not run pipeline-sharded models; "
                "use InferenceServer for shard specs"
            )
        self.specs: dict[str, ModelSpec] = dict(models)
        for name, spec in self.specs.items():
            if not isinstance(spec, ModelSpec):
                raise TypeError(
                    f"model {name!r}: cluster models must be ModelSpec "
                    f"(workers rebuild them from data), got {type(spec)}"
                )
        if isinstance(pair, str):
            pair = PrecisionPair.parse(pair)
        self.pair = pair
        self.backend = APNNBackend(pair)
        self.device = RTX3090
        if not candidate_batches or min(candidate_batches) < 1:
            raise ValueError(
                f"candidate_batches must be positive, got {candidate_batches}"
            )
        # Batch 1 is always a candidate: result payloads carry the
        # batch-1 unit price, so that plan must be prewarmed.
        self.candidate_batches = tuple(
            sorted(set(candidate_batches) | {1})
        )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._calibration = calibration
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = ServerMetrics()
        if self.cache_dir is not None:
            self.plan_cache = PlanCache(
                store=PlanCacheStore(self.cache_dir)
            )
            # Damaged lines survived by the load are an event worth
            # counting even before any traffic arrives.
            self.metrics.record_store_recovery(
                self.plan_cache.stats().store_recovered_lines
            )
        else:
            self.plan_cache = PlanCache()
        if self.tracer.enabled:
            self.plan_cache.tracer = self.tracer

        self._worker_names = tuple(
            f"worker-{i}" for i in range(num_workers)
        )
        self._workers: dict[str, _WorkerState] = {
            name: _WorkerState(name=name) for name in self._worker_names
        }
        self.placement_controller: PlacementController | None = None
        if placement is not None:
            self.placement_controller = PlacementController(
                placement, self.specs, list(self._worker_names)
            )
            if self.tracer.enabled:
                self.placement_controller.tracer = self.tracer
            self.metrics.replica_counts = (
                self.placement_controller.placement.replica_counts()
            )

        self._engines: dict[str, InferenceEngine] = {
            name: InferenceEngine(
                spec.build(), self.backend, self.device,
                calibration=calibration,
            )
            for name, spec in self.specs.items()
        }
        self._queues: dict[str, deque[_ClusterRequest]] = {
            name: deque() for name in self.specs
        }
        self._corruptions: deque[float] = deque(
            self.faults.corruption_times()
        )
        self._store_damage_seen = 0
        self._ids = itertools.count()
        self._cond: asyncio.Condition | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self._draining = False
        self._inflight = 0
        self._sim_now_us = 0.0
        self._last_finish_us = 0.0
        #: replay() compatibility: the cluster never sleeps service time.
        self.time_scale = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Prewarm plans, spawn workers (real or simulated), go live."""
        if self._running:
            return
        self._running = True
        self._draining = False
        self._cond = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="cluster-compile"
        )
        if not self.metrics.has_autotune_baseline:
            self.metrics.mark_autotune_baseline()
        await self._prewarm()
        for name in self._worker_names:
            st = self._workers[name]
            st.crashes = deque(self.faults.crash_times(name))
            if self.mode == "process":
                st.transport = await self._spawn(name)
        self._tasks = [
            asyncio.create_task(
                self._worker_loop(name, self._workers[name].generation),
                name=f"cluster-{name}",
            )
            for name in self._worker_names
        ]

    async def stop(self) -> None:
        """Graceful drain: serve everything queued or in flight, then
        shut worker processes down and account for any leftovers."""
        if not self._running:
            return
        self._running = False
        async with self._cond:
            self._cond.notify_all()
        # Restart tasks may be spawned *while* draining (a worker dying
        # mid-drain still fails over); gather until the list stays empty.
        while self._tasks:
            tasks, self._tasks = self._tasks, []
            await asyncio.gather(*tasks)
        for name in self._worker_names:
            st = self._workers[name]
            if st.transport is not None:
                await st.transport.close()
                st.transport = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        leftovers = [r for q in self._queues.values() for r in q]
        if leftovers:
            # Drain invariant violated (e.g. every replica dead with no
            # restart budget): count it loudly and fail the futures so
            # no client hangs.
            self.metrics.record_dropped(len(leftovers))
            for q in self._queues.values():
                q.clear()
            for r in leftovers:
                if not r.future.done():
                    r.future.set_exception(ClusterError(
                        f"request {r.request_id} for {r.model!r} was "
                        f"dropped at cluster stop (no surviving worker)"
                    ))

    async def submit(
        self, model: str, arrival_us: float | None = None
    ) -> ClusterResult:
        """Enqueue one request and await its (exactly-once) completion."""
        if model not in self.specs:
            raise KeyError(
                f"unknown model {model!r}; served: {sorted(self.specs)}"
            )
        if self._cond is None or not self._running:
            raise RuntimeError(
                "cluster not running; call await cluster.start() first"
            )
        if self._draining:
            raise ServerDraining(
                f"cluster is draining; request for {model!r} refused"
            )
        req = _ClusterRequest(
            request_id=next(self._ids),
            model=model,
            arrival_us=(
                arrival_us if arrival_us is not None else self._sim_now_us
            ),
            future=asyncio.get_running_loop().create_future(),
        )
        async with self._cond:
            if not self._running:
                raise RuntimeError(
                    "cluster is stopped; no worker will serve"
                )
            if self._draining:
                raise ServerDraining(
                    f"cluster is draining; request for {model!r} refused"
                )
            self.metrics.record_arrival(model, req.arrival_us)
            self.metrics.note_out_of_order_submit(model, req.arrival_us)
            queue = self._queues[model]
            if not queue or req.arrival_us >= queue[-1].arrival_us:
                queue.append(req)
            else:
                stamps = [r.arrival_us for r in queue]
                queue.insert(
                    bisect.bisect_right(stamps, req.arrival_us), req
                )
            self.metrics.record_queue_depth(self.queue_depth)
            self._sim_now_us = max(self._sim_now_us, req.arrival_us)
            self._cond.notify_all()
        return await req.future

    def begin_drain(self) -> None:
        """Refuse new submissions while in-flight requests complete.

        Same contract as :meth:`InferenceServer.begin_drain`: after
        this, :meth:`submit` raises :class:`~repro.serve.server
        .ServerDraining` while everything queued or dispatched runs to
        completion; call :meth:`stop` afterwards to wait for the drain.
        A later :meth:`start` clears the state.
        """
        self._draining = True

    @property
    def draining(self) -> bool:
        """True once drain has begun (or the cluster is stopped)."""
        return self._draining or not self._running

    async def unit_price_us(self, model: str) -> float:
        """Modeled batch-1 service microseconds of ``model``.

        Mirrors :meth:`InferenceServer.unit_price_us` -- the pricing
        quantity the HTTP gateway folds into result digests.  Batch-1
        plans are prewarmed at :meth:`start`, so this normally prices
        from the warm cache.
        """
        if model not in self.specs:
            raise KeyError(
                f"unknown model {model!r}; served: {sorted(self.specs)}"
            )
        engine = self._engines[model]
        shape = self.specs[model].input_shape
        await self.plan_cache.ensure_async(
            engine, 1, shape, executor=self._executor
        )
        return self.plan_cache.total_us(engine, 1, shape)

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def sim_duration_us(self) -> float:
        return self._last_finish_us

    def alive_workers(self) -> tuple[str, ...]:
        return tuple(
            name for name in self._worker_names
            if self._workers[name].alive
        )

    # ------------------------------------------------------------------
    # test hooks (process mode)
    # ------------------------------------------------------------------
    def worker_pids(self) -> dict[str, int]:
        return {
            name: st.transport.ready["pid"]
            for name, st in self._workers.items()
            if st.transport is not None and st.transport.ready
        }

    def kill_worker(self, name: str) -> None:
        """SIGKILL a real worker subprocess (mid-batch murder hook)."""
        if self.mode != "process":
            raise RuntimeError(
                "kill_worker needs mode='process'; script a FaultPlan "
                "crash for simulated clusters"
            )
        st = self._workers[name]
        if st.transport is not None:
            st.transport.kill()

    async def set_slow(self, name: str, seconds: float) -> None:
        """Make a real worker sleep before every reply (wedge hook)."""
        if self.mode != "process":
            raise RuntimeError("set_slow needs mode='process'")
        st = self._workers[name]
        if st.transport is None:
            raise RuntimeError(f"worker {name} has no live process")
        await st.transport.call(
            {"type": "set_slow", "seconds": seconds}
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    async def _prewarm(self) -> None:
        t0 = time.perf_counter()
        jobs = []
        for name, spec in self.specs.items():
            engine = self._engines[name]
            for batch in self.candidate_batches:
                jobs.append(self.plan_cache.ensure_async(
                    engine, batch, spec.input_shape,
                    executor=self._executor,
                ))
        compiled = await asyncio.gather(*jobs)
        self.metrics.record_prewarm(
            sum(compiled), (time.perf_counter() - t0) * 1e6
        )

    async def _spawn(self, name: str) -> _WorkerProcess:
        hello = {
            "type": "hello",
            "ipc": IPC_SCHEMA_VERSION,
            "worker": name,
            "pair": self.pair.name,
            "device": self.device.name,
            "cache_dir": (
                str(self.cache_dir) if self.cache_dir is not None else None
            ),
            "models": {
                n: spec.to_dict() for n, spec in self.specs.items()
            },
        }
        transport = _WorkerProcess(
            name, hello, self.policy, self.metrics, self._transport_died
        )
        await transport.start()
        return transport

    def _transport_died(self, transport: _WorkerProcess) -> None:
        """Reader-task callback: a live process's pipe went away.

        Handled in a tracked task (stop() gathers it) because the
        callback fires inside the transport's reader task, which must
        not block on the coordinator lock.
        """
        self._tasks.append(asyncio.get_running_loop().create_task(
            self._on_transport_death(transport),
            name=f"cluster-death-{transport.name}",
        ))

    async def _on_transport_death(self, transport: _WorkerProcess) -> None:
        async with self._cond:
            st = self._workers[transport.name]
            if st.transport is not transport:
                return  # stale: a restart already replaced it
            if st.alive:
                self._crash_locked(
                    st, self._sim_now_us, [], None, st.generation
                )
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def _routes(self, worker: str, model: str) -> bool:
        """May ``worker`` serve ``model``'s queue right now?

        Placement decides normally; a model whose entire replica set is
        dead is adopted by the first alive worker, because a placed
        request must never be stranded behind a placement that no
        longer names any survivor.
        """
        if not self._workers[worker].alive:
            return False
        ctl = self.placement_controller
        if ctl is None:
            return True
        placement = ctl.placement
        if placement.serves(worker, model):
            return True
        if any(
            self._workers[w].alive
            for w in placement.replicas_of(model)
            if w in self._workers
        ):
            return False
        return worker == self._first_alive()

    def _first_alive(self) -> str | None:
        for name in self._worker_names:
            if self._workers[name].alive:
                return name
        return None

    def _routable_models(self, worker: str) -> list[str]:
        return [
            model for model, q in self._queues.items()
            if q and self._routes(worker, model)
        ]

    def _maybe_rebalance(self) -> None:
        """Placement epoch evaluation (under the lock), as in the server."""
        ctl = self.placement_controller
        if ctl is None or not ctl.due(self._sim_now_us):
            return
        now = self._sim_now_us
        rates: dict[str, float] = {}
        service: dict[str, float | None] = {}
        for model, spec in self.specs.items():
            count, rate = self.metrics.arrival_stats(
                model, now, ctl.policy.window_us
            )
            if count < ctl.policy.min_requests:
                continue
            rates[model] = rate
            total = self.plan_cache.peek_total_us(
                self._engines[model], ctl.policy.service_batch,
                spec.input_shape,
            )
            service[model] = (
                None if total is None
                else ctl.policy.service_batch / (total * 1e-6)
            )
        swap = ctl.rebalance(now, rates, service)
        if swap is not None:
            adds, removes = swap
            self.metrics.record_rebalance(
                ctl.placement.epoch, adds, removes,
                ctl.placement.replica_counts(),
            )
            self._cond.notify_all()

    def _apply_corruptions_locked(self, now_us: float) -> None:
        """Deterministic store damage: torn trailing line at scripted
        instants, then a fresh load proving recovery skips exactly it."""
        applied = False
        while self._corruptions and self._corruptions[0] <= now_us:
            at = self._corruptions.popleft()
            if self.plan_cache.store is None:
                continue  # nothing persistent to damage
            path = self.plan_cache.store.path
            with path.open("ab") as fh:
                # what a crash mid-append leaves: a torn JSON prefix
                # (newline-terminated so later appends stay on their
                # own lines, exactly like a partial O_APPEND write)
                fh.write(b'{"version": 1, "key": {"model\n')
            fresh = PlanCacheStore(self.plan_cache.store.cache_dir)
            fresh.load()
            recovered = fresh.recovered_lines - self._store_damage_seen
            self._store_damage_seen = fresh.recovered_lines
            self.metrics.record_store_recovery(recovered)
            applied = True
            if self.tracer.enabled:
                self.tracer.event(
                    "store:corrupt", "failover", at,
                    lane="store", recovered_lines=recovered,
                )
        if applied:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def _crash_locked(
        self,
        st: _WorkerState,
        at_us: float,
        lost: list[_ClusterRequest],
        model: str | None,
        generation: int,
    ) -> None:
        """Kill a worker's state and fail its batch over (under the lock).

        Idempotent against racing detectors (EOF callback vs the worker
        loop's in-flight error): only the call matching the worker's
        live generation marks the crash and schedules the restart; the
        ``lost`` requests are requeued regardless, because only their
        dispatching loop holds them.
        """
        first = st.alive and st.generation == generation
        if first:
            st.alive = False
            st.generation += 1
            self.metrics.record_worker_crash(st.name)
            self._sim_now_us = max(self._sim_now_us, at_us)
            if self.tracer.enabled:
                self.tracer.event(
                    f"crash:{st.name}", "failover", at_us,
                    lane=st.name, worker=st.name,
                    restarts_used=st.restarts,
                )
        if lost:
            self._inflight -= len(lost)
            retry: list[_ClusterRequest] = []
            exhausted: list[_ClusterRequest] = []
            for r in lost:
                if r.future.done():
                    continue
                if r.attempts < self.policy.max_attempts:
                    retry.append(r)
                else:
                    exhausted.append(r)
            if retry:
                self.metrics.record_failover(st.name, len(retry))
                # Requeue at the head: these are the earliest arrivals
                # of their queue, so head insertion keeps it sorted.
                # Their redispatch is *not* re-recorded against the
                # reorder watermark -- the first dispatch committed the
                # order -- so failover can never count as a reorder.
                self._queues[model].extendleft(reversed(retry))
                if self.tracer.enabled:
                    self.tracer.event(
                        f"failover:{model}", "failover", at_us,
                        lane=st.name, worker=st.name, model=model,
                        requests=len(retry),
                        attempts=max(r.attempts for r in retry),
                    )
            if exhausted:
                self.metrics.record_dropped(len(exhausted))
                for r in exhausted:
                    r.future.set_exception(ClusterError(
                        f"request {r.request_id} for {r.model!r} failed "
                        f"{r.attempts} dispatches (max_attempts="
                        f"{self.policy.max_attempts})"
                    ))
        if first and (
            self.policy.restart_crashed
            and st.restarts < self.policy.max_restarts
        ):
            st.restarts += 1
            if self.mode == "sim":
                st.alive = True
                st.sim_free_at_us = at_us + self.policy.restart_delay_us
                self.metrics.record_worker_restart(st.name)
                if self.tracer.enabled:
                    self.tracer.event(
                        f"restart:{st.name}", "failover",
                        st.sim_free_at_us, lane=st.name, worker=st.name,
                    )
                self._tasks.append(asyncio.create_task(
                    self._worker_loop(st.name, st.generation),
                    name=f"cluster-{st.name}-r{st.restarts}",
                ))
            else:
                self._tasks.append(asyncio.create_task(
                    self._restart_process(st.name, st.generation),
                    name=f"cluster-respawn-{st.name}",
                ))
        self._cond.notify_all()

    async def _restart_process(self, name: str, generation: int) -> None:
        """Respawn a dead subprocess worker and bring it back alive."""
        old = self._workers[name].transport
        try:
            transport = await self._spawn(name)
        except Exception as exc:
            # The worker stays dead and survivors carry the load, but
            # the dead transport must still be reaped (it holds the
            # crashed subprocess plus its reader/heartbeat tasks) and
            # the spawn failure must surface as a failover event, not
            # vanish.
            if self.tracer.enabled:
                self.tracer.event(
                    f"restart-failed:{name}", "failover", self._sim_now_us,
                    lane=name, worker=name,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if old is not None:
                await old.close()
            async with self._cond:
                self._cond.notify_all()
            return
        installed = False
        async with self._cond:
            st = self._workers[name]
            if st.generation == generation:
                st.transport = transport
                st.alive = True
                st.sim_free_at_us = max(
                    st.sim_free_at_us, self._sim_now_us
                )
                self.metrics.record_worker_restart(name)
                if self.tracer.enabled:
                    self.tracer.event(
                        f"restart:{name}", "failover", self._sim_now_us,
                        lane=name, worker=name,
                    )
                self._tasks.append(asyncio.create_task(
                    self._worker_loop(name, st.generation),
                    name=f"cluster-{name}-r{st.restarts}",
                ))
                installed = True
            self._cond.notify_all()
        if not installed:
            await transport.close()  # lost the race to a newer crash
        elif old is not None:
            await old.close()  # reap the killed process

    # ------------------------------------------------------------------
    async def _worker_loop(self, name: str, generation: int) -> None:
        cond = self._cond
        st = self._workers[name]
        while True:
            async with cond:
                while True:
                    if not st.alive or st.generation != generation:
                        return
                    self._maybe_rebalance()
                    if (
                        self.mode == "sim" and st.crashes
                        and st.crashes[0] <= self._sim_now_us
                        and not self._routable_models(name)
                    ):
                        # Idle crash: the scripted instant passed while
                        # this worker had nothing to do.
                        self._crash_locked(
                            st, st.crashes.popleft(), [], None, generation
                        )
                        return
                    if self._routable_models(name):
                        break
                    if (
                        not self._running
                        and self.queue_depth == 0
                        and self._inflight == 0
                    ):
                        return
                    await cond.wait()
                models = self._routable_models(name)
                earliest = min(
                    self._queues[m][0].arrival_us for m in models
                )
                now_us = max(st.sim_free_at_us, earliest)
                if (
                    self.mode == "sim" and st.crashes
                    and st.crashes[0] <= now_us
                ):
                    # Dies at the scripted instant, before taking work.
                    self._crash_locked(
                        st, st.crashes.popleft(), [], None, generation
                    )
                    return
                if self.mode == "sim":
                    self._apply_corruptions_locked(now_us)
                # FIFO across this worker's routed queues: serve the
                # earliest arrived-by-now head (name breaks ties).
                model = min(
                    (
                        m for m in models
                        if self._queues[m][0].arrival_us <= now_us
                    ),
                    key=lambda m: (self._queues[m][0].arrival_us, m),
                )
                queue = self._queues[model]
                depth = 0
                for r in queue:
                    if r.arrival_us > now_us:
                        break
                    depth += 1
                # Largest candidate the arrived-by-now backlog fills
                # (batch 1 is always a candidate, and depth >= 1).
                take = max(
                    b for b in self.candidate_batches if b <= depth
                )
                batch = [queue.popleft() for _ in range(take)]
                fresh = [r for r in batch if r.attempts == 0]
                if fresh:
                    # Retried requests committed their dispatch order
                    # the first time; only fresh arrivals advance the
                    # reorder watermark.
                    self.metrics.record_dispatch(
                        model,
                        fresh[0].arrival_us,
                        fresh[-1].arrival_us,
                    )
                for r in batch:
                    r.attempts += 1
                self._inflight += len(batch)

            # ----- execute outside the lock ---------------------------
            if self.mode == "sim":
                await self._execute_sim(
                    st, generation, model, batch, take, depth, now_us
                )
            else:
                await self._execute_process(
                    st, generation, model, batch, take, depth, now_us
                )

    async def _execute_sim(
        self, st, generation, model, batch, batch_size, depth, now_us
    ) -> None:
        engine = self._engines[model]
        shape = self.specs[model].input_shape
        # Warm by prewarm; total_us is a pure cache read here.
        service_us = self.plan_cache.total_us(engine, batch_size, shape)
        service_us *= self.faults.slow_factor(st.name, now_us)
        unit_us = self.plan_cache.total_us(engine, 1, shape)
        finish_us = now_us + service_us
        if st.crashes and st.crashes[0] < finish_us:
            # Mid-batch crash: the batch dies with the worker and fails
            # over; anything the worker "computed" is lost.
            at = None
            async with self._cond:
                if st.crashes and st.crashes[0] < finish_us:
                    at = st.crashes.popleft()
                    self._crash_locked(
                        st, at, batch, model, generation
                    )
            if at is not None:
                return
        await asyncio.sleep(0)  # yield: interleave like the server does
        payloads = {
            r.request_id: result_payload(
                model, self.backend, self.device, unit_us, r.request_id
            )
            for r in batch
        }
        await self._complete(
            st, model, batch, batch_size, depth,
            now_us, finish_us, service_us, payloads,
        )

    async def _execute_process(
        self, st, generation, model, batch, batch_size, depth, now_us
    ) -> None:
        transport = st.transport
        if transport is None:
            async with self._cond:
                self._crash_locked(
                    st, now_us, batch, model, generation
                )
            return
        try:
            reply = await transport.call({
                "type": "batch",
                "model": model,
                "batch_size": batch_size,
                "requests": [r.request_id for r in batch],
            })
        except WorkerCrashed:
            async with self._cond:
                self._crash_locked(
                    st, self._sim_now_us, batch, model, generation
                )
            return
        if reply.get("type") == "error":
            # Deterministic serving error (bad model state, pricing
            # bug): retrying elsewhere would fail identically, so fail
            # the futures rather than bouncing the batch around.
            exc = ClusterError(
                f"worker {st.name} failed batch for {model!r}: "
                f"{reply.get('message')}"
            )
            async with self._cond:
                self._inflight -= len(batch)
                self._cond.notify_all()
            for r in batch:
                if not r.future.done():
                    r.future.set_exception(exc)
            return
        service_us = float(reply["service_us"])
        finish_us = now_us + service_us
        payloads = {
            int(r["request_id"]): r["payload"]
            for r in reply["results"]
        }
        await self._complete(
            st, model, batch, batch_size, depth,
            now_us, finish_us, service_us, payloads,
        )

    async def _complete(
        self, st, model, batch, batch_size, depth,
        start_us, finish_us, service_us, payloads,
    ) -> None:
        """Resolve one served batch (metrics, tracing, exactly-once)."""
        results = [
            ClusterResult(
                request_id=r.request_id,
                model=model,
                worker=st.name,
                attempts=r.attempts,
                batch_size=batch_size,
                batch_requests=len(batch),
                arrival_us=r.arrival_us,
                start_us=start_us,
                finish_us=finish_us,
                payload=payloads[r.request_id],
            )
            for r in batch
        ]
        async with self._cond:
            st.sim_free_at_us = finish_us
            self._sim_now_us = max(self._sim_now_us, finish_us)
            self._last_finish_us = max(self._last_finish_us, finish_us)
            self._inflight -= len(batch)
            self.metrics.record_batch(
                st.name,
                batch_size=batch_size,
                requests=len(batch),
                queue_depth=depth,
                service_us=service_us,
                request_latencies_us=[
                    res.latency_us for res in results
                ],
                meets_slo=True,
            )
            self._cond.notify_all()
        if self.tracer.enabled:
            self._trace_batch(
                st.name, model, batch_size, depth,
                start_us, finish_us, results,
            )
        for r, res in zip(batch, results):
            if not r.future.done():
                # Exactly-once: the future is the single completion
                # point, and only the batch that actually finished
                # reaches here holding its requests.
                r.future.set_result(res)

    # ------------------------------------------------------------------
    def _trace_batch(
        self, worker, model, batch_size, depth, start_us, finish_us,
        results,
    ) -> None:
        batch_id = self.tracer.span(
            f"batch:{model}", "batch", start_us, finish_us,
            lane=worker, model=model, worker=worker,
            batch_size=batch_size, requests=len(results),
            queue_depth=depth,
            retried=any(res.attempts > 1 for res in results),
        )
        for res in results:
            req_span = self.tracer.span(
                f"request:{res.request_id}", "request",
                res.arrival_us, res.finish_us, lane=res.model,
                request_id=res.request_id, model=res.model,
                worker=worker, attempts=res.attempts,
                batch_span=batch_id,
            )
            self.tracer.span(
                "queue", "queue", res.arrival_us, res.start_us,
                parent_id=req_span, lane=res.model,
            )
            self.tracer.span(
                "execute", "dispatch", res.start_us, res.finish_us,
                parent_id=req_span, lane=res.model, batch_span=batch_id,
            )


# ----------------------------------------------------------------------
# CLI entry: `python -m repro.serve.cluster --worker`
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.cluster",
        description="Cluster worker process (spawned by the coordinator; "
                    "speaks length-prefixed JSON frames on stdin/stdout).",
    )
    parser.add_argument(
        "--worker", action="store_true",
        help="run as a worker subprocess (the only supported mode)",
    )
    args = parser.parse_args(argv)
    if not args.worker:
        parser.error("pass --worker (coordinators are created in-process)")
    return _worker_main()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
