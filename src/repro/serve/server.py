"""Asyncio inference server: submit requests, get cost-modeled latencies.

The server front-ends the repo's analytical stack the way a real serving
binary front-ends a GPU fleet: clients ``await submit(model)``; worker
loops -- one per (backend, device) pair -- coalesce queued requests into
batches sized by the :class:`~repro.serve.batcher.DynamicBatcher`,
"execute" them by pricing a plan-cache-backed
:class:`~repro.nn.engine.CompiledPlan`, and resolve each request with its
simulated latency.

Time accounting is discrete-event on a simulated clock: each worker
carries a ``sim_free_at_us`` watermark; when it frees up (or the queue
head arrives, whichever is later) it coalesces only the requests that
have *arrived by that simulated instant* -- never future arrivals an
unscaled replay may already have enqueued -- and occupies itself for the
modeled batch latency.  Per-request latency is therefore queue wait plus
batch service, in the same microseconds the paper's tables use.
``time_scale`` (real seconds per simulated microsecond) optionally slows
the event loop down to interleave like real traffic; the default of 0
runs as fast as asyncio can schedule.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..nn.engine import InferenceEngine
from ..nn.module import Sequential
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..tensorcore.device import DeviceSpec
from .batcher import DEFAULT_CANDIDATE_BATCHES, DynamicBatcher
from .metrics import ServerMetrics
from .plan_cache import PlanCache

__all__ = ["ServedModel", "RequestResult", "InferenceServer"]

DEFAULT_INPUT_SHAPE = (3, 224, 224)


@dataclass(frozen=True)
class ServedModel:
    """One deployable model plus the input geometry it expects."""

    model: Sequential
    input_shape: tuple[int, int, int] = DEFAULT_INPUT_SHAPE


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one served request, all times in simulated microseconds."""

    request_id: int
    model: str
    worker: str
    batch_size: int      #: batch the plan was compiled for
    batch_requests: int  #: requests actually coalesced
    arrival_us: float
    start_us: float
    finish_us: float

    @property
    def wait_us(self) -> float:
        return self.start_us - self.arrival_us

    @property
    def service_us(self) -> float:
        return self.finish_us - self.start_us

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0


@dataclass
class _PendingRequest:
    request_id: int
    model: str
    arrival_us: float
    future: asyncio.Future = field(repr=False)


class InferenceServer:
    """Dispatches submitted requests across backend/device worker pairs.

    Parameters
    ----------
    models:
        name -> :class:`ServedModel` (or bare :class:`Sequential`, served
        at the default 3x224x224 geometry).
    workers:
        ``(backend, device)`` pairs; each becomes one worker loop with its
        own simulated clock.  Backends are the engine's
        (:class:`~repro.nn.engine.APNNBackend` /
        :class:`~repro.nn.engine.BNNBackend` /
        :class:`~repro.nn.engine.LibraryBackend`).
    slo_ms:
        Latency objective handed to the dynamic batcher.
    time_scale:
        Real seconds slept per simulated microsecond of batch service
        (0 = don't sleep, just yield).
    """

    def __init__(
        self,
        models: Mapping[str, ServedModel | Sequential],
        workers: Sequence[tuple[object, DeviceSpec]],
        *,
        slo_ms: float = 5.0,
        candidate_batches: Sequence[int] = DEFAULT_CANDIDATE_BATCHES,
        plan_cache: PlanCache | None = None,
        time_scale: float = 0.0,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        if not models:
            raise ValueError("server needs at least one model")
        if not workers:
            raise ValueError("server needs at least one (backend, device)")
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        self.models: dict[str, ServedModel] = {
            name: m if isinstance(m, ServedModel) else ServedModel(m)
            for name, m in models.items()
        }
        self.batcher = DynamicBatcher(slo_ms, candidate_batches)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.metrics = ServerMetrics()
        self.time_scale = time_scale

        self._worker_specs: list[tuple[str, object, DeviceSpec]] = []
        seen: dict[str, int] = {}
        for backend, device in workers:
            base = f"{backend.name}@{device.name}"
            seen[base] = seen.get(base, 0) + 1
            name = base if seen[base] == 1 else f"{base}#{seen[base]}"
            self._worker_specs.append((name, backend, device))

        # One engine per (model, worker): planning state (fused groups,
        # latency model) is reusable across requests.
        self._engines: dict[tuple[str, str], InferenceEngine] = {}
        for model_name, served in self.models.items():
            for wname, backend, device in self._worker_specs:
                self._engines[(model_name, wname)] = InferenceEngine(
                    served.model, backend, device, calibration=calibration
                )

        self._queues: dict[str, deque[_PendingRequest]] = {
            name: deque() for name in self.models
        }
        self._cond: asyncio.Condition | None = None
        self._stopped: asyncio.Event | None = None
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self._ids = itertools.count()
        self._sim_now_us = 0.0
        self._last_finish_us = 0.0

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    async def submit(
        self, model: str, arrival_us: float | None = None
    ) -> RequestResult:
        """Enqueue one request and await its simulated completion."""
        if model not in self.models:
            raise KeyError(
                f"unknown model {model!r}; served: {sorted(self.models)}"
            )
        cond = self._require_started()
        req = _PendingRequest(
            request_id=next(self._ids),
            model=model,
            arrival_us=(
                arrival_us if arrival_us is not None else self._sim_now_us
            ),
            future=asyncio.get_running_loop().create_future(),
        )
        self._sim_now_us = max(self._sim_now_us, req.arrival_us)
        async with cond:
            # Re-check under the lock: a stop() that completed while we
            # awaited it would leave this request queued forever.
            if not self._running:
                raise RuntimeError("server is stopped; no worker will serve")
            self._queues[model].append(req)
            cond.notify_all()
        return await req.future

    async def start(self) -> None:
        """Spawn the worker loops (idempotent)."""
        if self._running:
            return
        self._running = True
        self._cond = asyncio.Condition()
        self._stopped = asyncio.Event()
        self.metrics.mark_autotune_baseline()
        self._tasks = [
            asyncio.create_task(
                self._worker_loop(name, backend, device),
                name=f"serve-{name}",
            )
            for name, backend, device in self._worker_specs
        ]

    async def stop(self) -> None:
        """Drain the queues, then stop the workers."""
        if not self._running:
            return
        self._running = False
        async with self._cond:
            self._cond.notify_all()
        await asyncio.gather(*self._tasks)
        self._tasks = []
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called from another task."""
        await self.start()
        await self._stopped.wait()

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def sim_duration_us(self) -> float:
        """Simulated time from first arrival to last batch completion."""
        return self._last_finish_us

    def _require_started(self) -> asyncio.Condition:
        if self._cond is None or not self._running:
            raise RuntimeError(
                "server not running; call await server.start() first"
            )
        return self._cond

    # ------------------------------------------------------------------
    # worker loops
    # ------------------------------------------------------------------
    def _price_fn(self, model: str, worker: str):
        engine = self._engines[(model, worker)]
        shape = self.models[model].input_shape
        return lambda batch: self.plan_cache.total_us(engine, batch, shape)

    async def _worker_loop(self, name: str, backend, device) -> None:
        cond = self._cond
        sim_free_at_us = 0.0
        while True:
            async with cond:
                while self._running and self.queue_depth == 0:
                    await cond.wait()
                if not self._running and self.queue_depth == 0:
                    return
                # Earliest head arrival first (deeper queue breaks ties):
                # batches stay homogeneous per model and no request is
                # served after a later-arriving one from another queue.
                model = min(
                    (m for m, q in self._queues.items() if q),
                    key=lambda m: (
                        self._queues[m][0].arrival_us, -len(self._queues[m])
                    ),
                )
                queue = self._queues[model]
                # Non-clairvoyant dispatch: when the worker frees up (or
                # the head arrives, if later) it can only see requests
                # that have arrived by that simulated instant -- even if
                # an unscaled replay has already enqueued the future.
                now_us = max(sim_free_at_us, queue[0].arrival_us)
                depth = 0
                for r in queue:
                    if r.arrival_us > now_us:
                        break
                    depth += 1
                try:
                    decision = self.batcher.choose(
                        depth, self._price_fn(model, name)
                    )
                except Exception as exc:
                    # Planning/pricing failed (e.g. a model/input-shape
                    # mismatch surfacing at compile time).  Fail the
                    # visible requests' futures instead of killing the
                    # worker and hanging every submit() forever.
                    for r in [queue.popleft() for _ in range(depth)]:
                        if not r.future.done():
                            r.future.set_exception(exc)
                    continue
                take = min(decision.batch_size, depth)
                batch = [queue.popleft() for _ in range(take)]

            start_us = now_us
            finish_us = start_us + decision.expected_latency_us
            sim_free_at_us = finish_us
            self._sim_now_us = max(self._sim_now_us, finish_us)
            self._last_finish_us = max(self._last_finish_us, finish_us)

            # Occupy the (scaled) event loop for the modeled service time
            # so concurrent workers interleave like real executors.
            await asyncio.sleep(
                decision.expected_latency_us * self.time_scale
            )

            results = [
                RequestResult(
                    request_id=r.request_id,
                    model=r.model,
                    worker=name,
                    batch_size=decision.batch_size,
                    batch_requests=len(batch),
                    arrival_us=r.arrival_us,
                    start_us=start_us,
                    finish_us=finish_us,
                )
                for r in batch
            ]
            self.metrics.record_batch(
                name,
                batch_size=decision.batch_size,
                requests=len(batch),
                queue_depth=depth,
                service_us=decision.expected_latency_us,
                request_latencies_us=[res.latency_us for res in results],
                meets_slo=decision.meets_slo,
            )
            for r, res in zip(batch, results):
                if not r.future.done():
                    r.future.set_result(res)
