"""Asyncio inference server: submit requests, get cost-modeled latencies.

The server front-ends the repo's analytical stack the way a real serving
binary front-ends a GPU fleet: clients ``await submit(model)``; worker
loops -- one per (backend, device) pair -- coalesce queued requests into
batches sized by the :class:`~repro.serve.batcher.DynamicBatcher`,
"execute" them by pricing a plan-cache-backed
:class:`~repro.nn.engine.CompiledPlan`, and resolve each request with its
simulated latency.

Scheduling is pluggable (:mod:`repro.serve.scheduler`): each time a
worker frees up, the configured :class:`~repro.serve.scheduler.QueueDiscipline`
(FIFO / earliest-deadline-first / weighted fair queueing) picks which
model's queue to serve from snapshots of the *arrived-by-now* backlog.
Two load policies (:mod:`repro.serve.policies`) ride on the same clock:
an :class:`~repro.serve.policies.AdmissionPolicy` sheds or defers
requests past a queue-depth cap, and a
:class:`~repro.serve.policies.PrecisionAutoswitcher` downgrades APNN
workers' ``wXaY`` pair under backlog, pricing the degraded plan through
the same plan cache.

Time accounting is discrete-event on a simulated clock: each worker
carries a ``sim_free_at_us`` watermark; when it frees up (or the queue
head arrives, whichever is later) it coalesces only the requests that
have *arrived by that simulated instant* -- never future arrivals an
unscaled replay may already have enqueued -- and occupies itself for the
modeled batch latency.  Per-request latency is therefore queue wait plus
batch service, in the same microseconds the paper's tables use.
``time_scale`` (real seconds per simulated microsecond) optionally slows
the event loop down to interleave like real traffic; the default of 0
runs as fast as asyncio can schedule.

Cold starts never stall the event loop: when a worker's batching sweep
would need plans that are not cached yet, the worker releases the
condition lock and compiles them through
:meth:`~repro.serve.plan_cache.PlanCache.ensure_async` (thread executor,
single-flight across racing workers), then re-runs its selection against
the live queues -- other workers keep draining warm queues and clients
keep submitting for the whole compile.  ``start(prewarm=True)``
pre-compiles the batcher's candidate batches for every (model, worker)
pair before any traffic lands, and ``cache_dir=`` persists every
compiled plan so a restarted server replans nothing.

Placement (:mod:`repro.serve.placement`) decides *which* models each
worker loop may dispatch.  Without a policy every worker serves every
model (the original behavior).  With one, each model starts on a single
worker; at rebalance epochs the controller compares windowed arrival
rates against modeled per-replica service rates and grows or shrinks
replica sets, swapping the immutable placement snapshot atomically
under the condition lock -- strictly between batches, so queued
requests simply re-route and nothing is dropped or reordered (both
guarded by metrics counters).  Sharded models run pipeline-parallel:
the stage-0 owner dispatches from the queue, serves its stage, and
hands the batch to the next stage's worker through per-worker stage
queues; the last stage resolves the futures.  Every stage is priced
through the same plan cache as whole models.
"""

from __future__ import annotations

import asyncio
import bisect
import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

from ..core.types import PrecisionPair
from ..nn.engine import APNNBackend, InferenceEngine
from ..nn.module import Sequential
from ..obs import NULL_TRACER, Tracer
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..tensorcore.counters import ExecutionCounters
from ..tensorcore.device import DeviceSpec
from .batcher import DEFAULT_CANDIDATE_BATCHES, DynamicBatcher
from .metrics import ServerMetrics
from .placement import (
    PlacementController,
    PlacementPolicy,
    StagePlan,
    pipeline_stages,
)
from .plan_cache import PlanCache, PlanCacheStore
from .policies import (
    AdmissionPolicy,
    AdmissionRejected,
    PrecisionAutoswitcher,
    accuracy_delta,
)
from .scheduler import QueueDiscipline, QueueSnapshot, make_discipline

__all__ = [
    "ServedModel",
    "RequestResult",
    "ServerDraining",
    "InferenceServer",
]


class ServerDraining(RuntimeError):
    """A submission arrived while the backend is draining.

    Raised by :meth:`InferenceServer.submit` and
    :meth:`~repro.serve.cluster.ClusterCoordinator.submit` once
    ``begin_drain()`` has been called: in-flight requests run to
    completion, new ones are refused.  The HTTP gateway maps this (and
    its own drain state) to a 503 so load balancers rotate traffic away
    during shutdown.
    """

DEFAULT_INPUT_SHAPE = (3, 224, 224)


@dataclass(frozen=True)
class ServedModel:
    """One deployable model plus the input geometry it expects.

    ``slo_ms`` optionally overrides the server-wide latency objective
    for this model (EDF deadlines and per-model batching use it);
    ``weight`` is the model's share under weighted fair queueing.
    """

    model: Sequential
    input_shape: tuple[int, int, int] = DEFAULT_INPUT_SHAPE
    slo_ms: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one served request, all times in simulated microseconds."""

    request_id: int
    model: str
    worker: str
    batch_size: int      #: batch the plan was compiled for
    batch_requests: int  #: requests actually coalesced
    arrival_us: float
    start_us: float
    finish_us: float
    deadline_us: float = float("inf")  #: arrival + the model's SLO
    pair: str = ""        #: wXaY pair actually served (APNN workers)
    switched: bool = False  #: True when the pair was autoswitch-degraded
    #: Per-stage worker names for pipeline-sharded models (empty when
    #: the model ran whole on ``worker``).
    stages: tuple[str, ...] = ()

    @property
    def wait_us(self) -> float:
        return self.start_us - self.arrival_us

    @property
    def service_us(self) -> float:
        return self.finish_us - self.start_us

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0

    @property
    def met_deadline(self) -> bool:
        return self.finish_us <= self.deadline_us


@dataclass
class _PendingRequest:
    request_id: int
    model: str
    arrival_us: float
    future: asyncio.Future = field(repr=False)


@dataclass
class _StageJob:
    """One batch travelling a sharded model's pipeline.

    Created by the stage-0 owner at dispatch and handed worker-to-worker
    through the per-worker stage queues; the final stage resolves the
    requests' futures.  The job carries the stage assignment it was
    dispatched with, so a rebalance can never strand it mid-pipeline.
    """

    model: str
    stages: tuple[StagePlan, ...]
    stage_idx: int
    requests: list[_PendingRequest]
    batch_size: int
    expected_latency_us: float  #: full-pipeline modeled latency
    meets_slo: bool
    depth: int       #: queue depth at dispatch
    slo_us: float
    pair_name: str
    ready_us: float  #: simulated instant the previous stage finished
    start_us: float  #: stage-0 service start (the requests' start)
    #: Tracing context (populated only when the server's tracer is
    #: enabled): the scheduling decision captured at dispatch, whether
    #: the dispatch went through the cold-compile path, and each served
    #: stage's (start_us, finish_us) -- the final stage emits the whole
    #: batch/stage/kernel hierarchy retroactively from these.
    sched_attrs: dict | None = None
    cold: bool = False
    stage_bounds: list[tuple[float, float]] = field(default_factory=list)


class InferenceServer:
    """Dispatches submitted requests across backend/device worker pairs.

    Parameters
    ----------
    models:
        name -> :class:`ServedModel` (or bare :class:`Sequential`, served
        at the default 3x224x224 geometry).
    workers:
        ``(backend, device)`` pairs; each becomes one worker loop with its
        own simulated clock.  Backends are the engine's
        (:class:`~repro.nn.engine.APNNBackend` /
        :class:`~repro.nn.engine.BNNBackend` /
        :class:`~repro.nn.engine.LibraryBackend`).
    slo_ms:
        Latency objective handed to the dynamic batcher; individual
        models may override it via :attr:`ServedModel.slo_ms`.
    discipline:
        Queue discipline name (``"fifo"`` / ``"edf"`` / ``"wfq"``) or a
        :class:`~repro.serve.scheduler.QueueDiscipline` instance.
    admission:
        Optional :class:`~repro.serve.policies.AdmissionPolicy` bounding
        the queue (shed or defer past the cap).
    autoswitch:
        Optional :class:`~repro.serve.policies.PrecisionAutoswitcher`
        downgrading APNN workers' precision under backlog.
    placement:
        Optional :class:`~repro.serve.placement.PlacementPolicy`.  When
        given, each model starts on one worker and the server rebalances
        replica sets at epoch boundaries from the metrics layer's
        arrival-rate windows; models named in the policy's ``shard``
        spec run pipeline-parallel across distinct workers.  ``None``
        keeps the original any-worker-serves-any-model behavior.
    time_scale:
        Real seconds slept per simulated microsecond of batch service
        (0 = don't sleep, just yield).
    cache_dir:
        Optional directory for plan-cache persistence: the server builds
        its :class:`~repro.serve.plan_cache.PlanCache` over a
        :class:`~repro.serve.plan_cache.PlanCacheStore` there, loading
        every previously compiled plan on construction and appending
        each new one.  Mutually exclusive with ``plan_cache``.
    compile_workers:
        Size of the thread executor cold plan compilations run in
        (both the worker loops' off-loop compiles and ``prewarm``).
    tracer:
        Optional :class:`repro.obs.Tracer`.  When given, the server
        records hierarchical spans on the simulated clock -- admission
        events, batch/stage dispatches with per-fused-group kernel
        child spans (carrying :class:`~repro.tensorcore.counters
        .ExecutionCounters` attributes), per-request request/queue/
        execute spans, placement swaps -- plus wall-clock plan-compile
        spans, and installs itself into the plan cache and placement
        controller.  The default is the shared no-op tracer: every
        instrumentation site is guarded by ``tracer.enabled``, so an
        untraced server does no tracing work and behaves byte-
        identically to one built before tracing existed.
    """

    def __init__(
        self,
        models: Mapping[str, ServedModel | Sequential],
        workers: Sequence[tuple[object, DeviceSpec]],
        *,
        slo_ms: float = 5.0,
        candidate_batches: Sequence[int] = DEFAULT_CANDIDATE_BATCHES,
        plan_cache: PlanCache | None = None,
        discipline: str | QueueDiscipline = "fifo",
        admission: AdmissionPolicy | None = None,
        autoswitch: PrecisionAutoswitcher | None = None,
        placement: PlacementPolicy | None = None,
        time_scale: float = 0.0,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cache_dir: str | Path | None = None,
        compile_workers: int = 2,
        tracer: Tracer | None = None,
    ) -> None:
        if not models:
            raise ValueError("server needs at least one model")
        if not workers:
            raise ValueError("server needs at least one (backend, device)")
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if compile_workers < 1:
            raise ValueError(
                f"compile_workers must be >= 1, got {compile_workers}"
            )
        if plan_cache is not None and cache_dir is not None:
            raise ValueError(
                "pass plan_cache or cache_dir, not both (a supplied cache "
                "keeps its own store configuration)"
            )
        self.models: dict[str, ServedModel] = {
            name: m if isinstance(m, ServedModel) else ServedModel(m)
            for name, m in models.items()
        }
        self.batcher = DynamicBatcher(slo_ms, candidate_batches)
        if plan_cache is not None:
            self.plan_cache = plan_cache
        elif cache_dir is not None:
            self.plan_cache = PlanCache(store=PlanCacheStore(cache_dir))
        else:
            self.plan_cache = PlanCache()
        self.compile_workers = compile_workers
        self._executor: ThreadPoolExecutor | None = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            # Compiles trace as wall-track spans from executor threads;
            # placement decisions as sim-track instants.  Both hooks
            # default to the null tracer, so only a traced server pays.
            self.plan_cache.tracer = self.tracer
        self.metrics = ServerMetrics()
        # A store built here just loaded; surface any damaged lines it
        # skipped (crash-during-append debris) in this server's metrics.
        if cache_dir is not None:
            self.metrics.record_store_recovery(
                self.plan_cache.stats().store_recovered_lines
            )
        self.discipline = make_discipline(discipline)
        self.admission = admission
        self.autoswitch = autoswitch
        self.time_scale = time_scale
        self._calibration = calibration

        self._worker_specs: list[tuple[str, object, DeviceSpec]] = []
        seen: dict[str, int] = {}
        for backend, device in workers:
            base = f"{backend.name}@{device.name}"
            seen[base] = seen.get(base, 0) + 1
            name = base if seen[base] == 1 else f"{base}#{seen[base]}"
            self._worker_specs.append((name, backend, device))
        self._workers_by_name = {
            name: (backend, device)
            for name, backend, device in self._worker_specs
        }

        self.placement_controller: PlacementController | None = None
        if placement is not None:
            self.placement_controller = PlacementController(
                placement, self.models, [n for n, _, _ in self._worker_specs]
            )
            if self.tracer.enabled:
                self.placement_controller.tracer = self.tracer
            self.metrics.replica_counts = (
                self.placement_controller.placement.replica_counts()
            )
        #: Per-worker queues of in-flight pipeline handoffs.
        self._stage_queues: dict[str, deque[_StageJob]] = {
            name: deque() for name, _, _ in self._worker_specs
        }
        #: Engines of pipeline stages, keyed (model, stage index, worker).
        self._stage_engines: dict[tuple[str, int, str], InferenceEngine] = {}
        #: Pipeline batches dispatched but not yet fully resolved.
        self._pipeline_inflight = 0

        # One engine per (model, worker, precision): planning state (fused
        # groups, latency model) is reusable across requests.  Key "" is
        # the worker's configured precision; autoswitch-degraded engines
        # are built lazily under the degraded pair's name.
        self._engines: dict[tuple[str, str, str], InferenceEngine] = {}
        for model_name, served in self.models.items():
            for wname, backend, device in self._worker_specs:
                self._engines[(model_name, wname, "")] = InferenceEngine(
                    served.model, backend, device, calibration=calibration
                )

        self._queues: dict[str, deque[_PendingRequest]] = {
            name: deque() for name in self.models
        }
        self._deferred: deque[_PendingRequest] = deque()
        self._served_counts: dict[str, int] = {name: 0 for name in self.models}
        # Latest per-model dispatch feasibility (not BatchDecision.meets_slo):
        # the trigger signal for slo_gated admission.  Starts attainable.
        self._slo_infeasible: dict[str, bool] = {
            name: False for name in self.models
        }
        self._cond: asyncio.Condition | None = None
        self._stopped: asyncio.Event | None = None
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self._draining = False
        self._ids = itertools.count()
        self._sim_now_us = 0.0
        self._last_finish_us = 0.0

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    async def submit(
        self, model: str, arrival_us: float | None = None
    ) -> RequestResult:
        """Enqueue one request and await its simulated completion.

        Raises :class:`~repro.serve.policies.AdmissionRejected` when the
        admission policy sheds the request at the queue-depth cap.
        """
        if model not in self.models:
            raise KeyError(
                f"unknown model {model!r}; served: {sorted(self.models)}"
            )
        cond = self._require_started()
        if self._draining:
            raise ServerDraining(
                f"server is draining; request for {model!r} refused"
            )
        req = _PendingRequest(
            request_id=next(self._ids),
            model=model,
            arrival_us=(
                arrival_us if arrival_us is not None else self._sim_now_us
            ),
            future=asyncio.get_running_loop().create_future(),
        )
        async with cond:
            # Re-check under the lock: a stop() that completed while we
            # awaited it would leave this request queued forever.
            if not self._running:
                raise RuntimeError("server is stopped; no worker will serve")
            if self._draining:
                raise ServerDraining(
                    f"server is draining; request for {model!r} refused"
                )
            # Demand is recorded before admission: a shed request is
            # still arrival pressure the placement layer should see.
            self.metrics.record_arrival(model, req.arrival_us)
            if self.admission is not None and not self.admission.admits(
                self.queue_depth, self._slo_infeasible[model]
            ):
                if self.admission.mode == "shed":
                    # shed before touching the clock: a rejected request
                    # must not skew later default-arrival stamps
                    self.metrics.record_rejection(model)
                    if self.tracer.enabled:
                        self._trace_admission(req, "shed")
                    raise AdmissionRejected(
                        model, self.queue_depth, self.admission.max_queue_depth
                    )
                self.metrics.record_deferral(model)
                self._deferred.append(req)
                if self.tracer.enabled:
                    self._trace_admission(req, "deferred")
            else:
                self._enqueue(req)
                self.metrics.record_queue_depth(self.queue_depth)
                if self.tracer.enabled:
                    self._trace_admission(req, "admitted")
            self._sim_now_us = max(self._sim_now_us, req.arrival_us)
            cond.notify_all()
        return await req.future

    async def start(self, *, prewarm: bool = False) -> None:
        """Spawn the worker loops (idempotent).

        ``prewarm=True`` compiles the batcher's candidate batches for
        every (model, worker) pair -- through the same single-flight
        async path and executor the worker loops use -- before any
        worker runs, so the first real traffic finds a warm plan cache.
        """
        if self._running:
            return
        self._running = True
        self._draining = False
        self._cond = asyncio.Condition()
        self._stopped = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.compile_workers,
            thread_name_prefix="plan-compile",
        )
        # Mark once per server lifetime: re-marking on a restart would
        # silently zero the autotune delta accumulated by earlier runs
        # (the restart-metrics regression test guards this).
        if not self.metrics.has_autotune_baseline:
            self.metrics.mark_autotune_baseline()
        if self.placement_controller is not None:
            await self._install_pipelines()
        if prewarm:
            await self._prewarm()
        self._tasks = [
            asyncio.create_task(
                self._worker_loop(name, backend, device),
                name=f"serve-{name}",
            )
            for name, backend, device in self._worker_specs
        ]

    async def stop(self) -> None:
        """Drain the queues (deferred requests included), then stop."""
        if not self._running:
            return
        self._running = False
        async with self._cond:
            self._cond.notify_all()
        await asyncio.gather(*self._tasks)
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # Drain accounting: workers exit only once every queue, stage
        # queue and pipeline is empty, so leftovers here are a bug.  The
        # counter makes it loud and the failed futures keep clients from
        # hanging on it.
        leftovers = [r for q in self._queues.values() for r in q]
        leftovers += list(self._deferred)
        leftovers += [
            r
            for jobs in self._stage_queues.values()
            for job in jobs
            for r in job.requests
        ]
        if leftovers:
            self.metrics.record_dropped(len(leftovers))
            for q in self._queues.values():
                q.clear()
            self._deferred.clear()
            for jobs in self._stage_queues.values():
                jobs.clear()
            for r in leftovers:
                if not r.future.done():
                    r.future.set_exception(
                        RuntimeError(
                            f"request {r.request_id} for {r.model!r} was "
                            f"dropped at server stop (drain invariant "
                            f"violated)"
                        )
                    )
        self._stopped.set()

    def begin_drain(self) -> None:
        """Refuse new submissions while in-flight requests complete.

        The one external-facing drain hook (shared with
        :class:`~repro.serve.cluster.ClusterCoordinator`): after this,
        :meth:`submit` raises :class:`ServerDraining`, while everything
        already queued or dispatched runs to completion -- call
        :meth:`stop` afterwards to actually wait for the drain.  A later
        :meth:`start` clears the state.
        """
        self._draining = True

    @property
    def draining(self) -> bool:
        """True once drain has begun (or the server is fully stopped).

        The gateway polls this to answer health checks and to 503 new
        connections during shutdown.
        """
        return self._draining or not self._running

    async def unit_price_us(self, model: str) -> float:
        """Modeled batch-1 service microseconds of ``model``.

        Deterministic function of (model, backend, device, precision,
        calibration) on the first worker -- the pricing quantity the
        HTTP gateway folds into result digests, so a gateway response
        and a direct :meth:`submit` against the same server derive
        identical bytes.  Compiles the batch-1 plan off-loop on first
        use.
        """
        if model not in self.models:
            raise KeyError(
                f"unknown model {model!r}; served: {sorted(self.models)}"
            )
        ref_name = self._worker_specs[0][0]
        engine = self._engines[(model, ref_name, "")]
        shape = self.models[model].input_shape
        await self.plan_cache.ensure_async(
            engine, 1, shape, executor=self._executor
        )
        return self.plan_cache.total_us(engine, 1, shape)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called from another task."""
        await self.start()
        await self._stopped.wait()

    @property
    def queue_depth(self) -> int:
        """Admitted (non-deferred) requests currently queued."""
        return sum(len(q) for q in self._queues.values())

    @property
    def deferred_depth(self) -> int:
        """Requests parked by the admission policy's defer mode."""
        return len(self._deferred)

    @property
    def sim_duration_us(self) -> float:
        """Simulated time from first arrival to last batch completion."""
        return self._last_finish_us

    def slo_ms_for(self, model: str) -> float:
        """Effective latency objective of one model (override or global)."""
        override = self.models[model].slo_ms
        return self.batcher.slo_ms if override is None else override

    def _enqueue(self, req: _PendingRequest) -> None:
        """Insert one admitted request by arrival time (under the lock).

        Queues must stay arrival-sorted: the worker loop's visibility
        scan and its take-from-head dispatch both assume the head is the
        earliest arrival, so an out-of-order ``submit(model,
        arrival_us=...)`` appended at the tail would let a worker couple
        an already-arrived request to a far-future one (or dispatch the
        future one outright), violating non-clairvoyance.  Ties keep
        submission order.
        """
        # A stamp behind already-dispatched arrivals is the client
        # reordering, not the server: rewind the dispatch-order
        # watermark so serving it later does not count against the
        # placement invariant (no-op for in-order traffic).
        self.metrics.note_out_of_order_submit(req.model, req.arrival_us)
        queue = self._queues[req.model]
        if not queue or req.arrival_us >= queue[-1].arrival_us:
            queue.append(req)
            return
        stamps = [r.arrival_us for r in queue]
        queue.insert(bisect.bisect_right(stamps, req.arrival_us), req)

    async def _prewarm(self) -> None:
        """Pre-compile candidate plans for every (model, worker) pair.

        Runs through :meth:`PlanCache.ensure_async`, so racing keys
        dedupe (two workers with the same backend+device share plans)
        and everything compiles in the executor concurrently.  Records
        how many plans were actually compiled -- a persisted store may
        already hold them all.
        """
        t0 = time.perf_counter()
        jobs = []
        seen = set()

        def submit(engine, batch, shape):
            key = self.plan_cache.key_for(engine, batch, shape)
            if key in seen:
                return
            seen.add(key)
            jobs.append(
                self.plan_cache.ensure_async(
                    engine, batch, shape, executor=self._executor
                )
            )

        for model_name, served in self.models.items():
            stages = self._stages_of(model_name)
            if stages is not None:
                # Sharded models execute stage-wise only: prewarm the
                # stage plans on their pinned workers, not whole-model
                # plans that no worker will ever dispatch.
                for stage in stages:
                    engine = self._stage_engines[
                        (model_name, stage.index, stage.worker)
                    ]
                    for batch in self.batcher.candidate_batches:
                        submit(engine, batch, stage.input_shape)
                continue
            for wname, backend, device in self._worker_specs:
                engine = self._engines[(model_name, wname, "")]
                for batch in self.batcher.candidate_batches:
                    submit(engine, batch, served.input_shape)
        compiled = await asyncio.gather(*jobs)
        self.metrics.record_prewarm(
            sum(compiled), (time.perf_counter() - t0) * 1e6
        )

    async def _install_pipelines(self) -> None:
        """Partition and pin the policy's sharded models (start-time).

        The split is driven by the unsharded model's compiled plan --
        ensured through the normal async single-flight path, so even a
        cold partition never stalls the event loop -- priced per fused
        group and balanced over the model's top-level layers.  Stage
        submodels get their own engines on their pinned workers; their
        plans compile through the same plan cache as everything else.
        Idempotent across restarts: an installed pipeline stays put.
        """
        ctl = self.placement_controller
        for model_name, num_stages in ctl.policy.shard:
            if ctl.placement.stages_of(model_name) is not None:
                continue  # restart: already partitioned and pinned
            served = self.models[model_name]
            ref_name = self._worker_specs[0][0]
            engine = self._engines[(model_name, ref_name, "")]
            await self.plan_cache.ensure_async(
                engine, ctl.policy.partition_batch, served.input_shape,
                executor=self._executor,
            )
            plan = self.plan_cache.get(
                engine, ctl.policy.partition_batch, served.input_shape
            )
            stages = pipeline_stages(
                model_name, served.model, served.input_shape, num_stages,
                plan, engine.latency_model,
            )
            pinned = ctl.install_stages(model_name, stages, self._sim_now_us)
            for stage in pinned:
                w_backend, w_device = self._workers_by_name[stage.worker]
                self._stage_engines[(model_name, stage.index, stage.worker)] = (
                    InferenceEngine(
                        stage.submodel, w_backend, w_device,
                        calibration=self._calibration,
                    )
                )
        self.metrics.replica_counts = ctl.placement.replica_counts()

    def _require_started(self) -> asyncio.Condition:
        if self._cond is None or not self._running:
            raise RuntimeError(
                "server not running; call await server.start() first"
            )
        return self._cond

    # ------------------------------------------------------------------
    # worker loops
    # ------------------------------------------------------------------
    def _engine_for(
        self, model: str, worker: str, backend, device,
        pair: PrecisionPair | None,
    ) -> InferenceEngine:
        """Engine serving ``model`` on ``worker``, optionally downgraded.

        Degraded-precision engines are created lazily and memoized so an
        autoswitch rung costs one planning pass per (model, worker, pair)
        for the process lifetime; their plans land in the same plan cache
        under the degraded backend's key.  Per-layer mixed-precision
        overrides are preserved: each override keeps its own pair when it
        is already below the rung, and is capped at the rung otherwise --
        a downgrade never raises any layer's precision.
        """
        key = (model, worker, pair.name if pair is not None else "")
        engine = self._engines.get(key)
        if engine is None:
            layer_pairs = tuple(
                (name, lp if lp.plane_product < pair.plane_product else pair)
                for name, lp in backend.layer_pairs
            )
            degraded = replace(backend, pair=pair, layer_pairs=layer_pairs)
            engine = InferenceEngine(
                self.models[model].model, degraded, device,
                calibration=self._calibration,
            )
            self._engines[key] = engine
        return engine

    def _price_fn(self, engine: InferenceEngine, model: str):
        shape = self.models[model].input_shape
        return lambda batch: self.plan_cache.total_us(engine, batch, shape)

    def _promote_deferred(self) -> None:
        """Admit deferred requests (oldest first) as capacity frees.

        Must be called under the condition lock.  A stopping server
        flushes everything so drain-on-stop still answers every request;
        a running one respects the admission cap.  Promoted requests
        keep their original arrival stamp and rejoin in arrival order
        (the queues' sorted invariant; ties land behind equal stamps,
        i.e. at the tail for burst traffic).
        """
        if not self._deferred:
            return
        cap = (
            self.admission.max_queue_depth
            if self.admission is not None else None
        )
        promoted = False
        while self._deferred and (
            not self._running or cap is None or self.queue_depth < cap
        ):
            self._enqueue(self._deferred.popleft())
            promoted = True
        if promoted:
            if self._running:
                # the stop()-time flush ignores the cap by design; don't
                # let it poison the <= cap invariant of the high-water mark
                self.metrics.record_queue_depth(self.queue_depth)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # placement routing
    # ------------------------------------------------------------------
    def _serves(self, worker: str, model: str) -> bool:
        """May ``worker`` dispatch ``model`` from its queue?"""
        if self.placement_controller is None:
            return True
        return self.placement_controller.placement.serves(worker, model)

    def _stages_of(self, model: str) -> tuple[StagePlan, ...] | None:
        if self.placement_controller is None:
            return None
        return self.placement_controller.placement.stages_of(model)

    def _replica_count(self, model: str) -> int:
        """Workers sharing this model's queue (batch-share divisor)."""
        if self.placement_controller is None:
            return 1
        mp = self.placement_controller.placement.placements[model]
        return 1 if mp.stages is not None else len(mp.replicas)

    def _routable_depth(self, worker: str) -> int:
        """Queued requests in queues this worker may dispatch from."""
        return sum(
            len(q)
            for model, q in self._queues.items()
            if q and self._serves(worker, model)
        )

    def _maybe_rebalance(self) -> None:
        """Swap the placement at epoch boundaries (under the lock).

        Runs strictly between batches: whichever worker iterates first
        past an epoch boundary evaluates it.  Demand comes from the
        metrics layer's arrival windows; per-replica service rates come
        from *warm* plan-cache totals only (a cold model holds its
        placement rather than compiling inside the lock).  The swap is
        one reference assignment, so queued requests re-route wholesale
        and in-flight work keeps the assignment it started with.
        """
        ctl = self.placement_controller
        if ctl is None or not ctl.due(self._sim_now_us):
            return
        now = self._sim_now_us
        rates: dict[str, float] = {}
        service: dict[str, float | None] = {}
        for model, served in self.models.items():
            if ctl.placement.stages_of(model) is not None:
                continue
            count, rate = self.metrics.arrival_stats(
                model, now, ctl.policy.window_us
            )
            if count < ctl.policy.min_requests:
                continue
            rates[model] = rate
            primary = ctl.placement.replicas_of(model)[0]
            engine = self._engines[(model, primary, "")]
            total = self.plan_cache.peek_total_us(
                engine, ctl.policy.service_batch, served.input_shape
            )
            service[model] = (
                None if total is None
                else ctl.policy.service_batch / (total * 1e-6)
            )
        swap = ctl.rebalance(now, rates, service)
        if swap is not None:
            adds, removes = swap
            self.metrics.record_rebalance(
                ctl.placement.epoch, adds, removes,
                ctl.placement.replica_counts(),
            )
            # New owners may now serve queues they previously ignored.
            self._cond.notify_all()

    def _visible_snapshots(
        self, now_us: float, worker: str | None = None
    ) -> tuple[list[QueueSnapshot], dict[str, int]]:
        """Per-model views of requests arrived by ``now_us``.

        With a placement layer, only queues routed to ``worker`` are
        visible -- the discipline chooses among the models this worker
        actually hosts.
        """
        snapshots: list[QueueSnapshot] = []
        depths: dict[str, int] = {}
        for model, queue in self._queues.items():
            if not queue or queue[0].arrival_us > now_us:
                continue
            if worker is not None and not self._serves(worker, model):
                continue
            depth = 0
            for r in queue:
                if r.arrival_us > now_us:
                    break
                depth += 1
            depths[model] = depth
            served = self.models[model]
            slo_us = self.slo_ms_for(model) * 1000.0
            snapshots.append(
                QueueSnapshot(
                    model=model,
                    depth=depth,
                    head_arrival_us=queue[0].arrival_us,
                    head_deadline_us=queue[0].arrival_us + slo_us,
                    weight=served.weight,
                    served=self._served_counts[model],
                    replicas=self._replica_count(model),
                )
            )
        return snapshots, depths

    async def _worker_loop(self, name: str, backend, device) -> None:
        cond = self._cond
        sim_free_at_us = 0.0
        while True:
            job: _StageJob | None = None
            cold_specs: tuple = ()
            async with cond:
                self._promote_deferred()
                while True:
                    self._maybe_rebalance()
                    if self._stage_queues[name] or (
                        self._routable_depth(name) > 0
                    ):
                        break
                    if (
                        not self._running
                        and self.queue_depth == 0
                        and self._pipeline_inflight == 0
                    ):
                        return
                    await cond.wait()
                    self._promote_deferred()
                if self._stage_queues[name]:
                    # Pipeline handoffs first: draining in-flight work
                    # bounds the pipeline and keeps stage order FIFO.
                    job = self._stage_queues[name].popleft()
            if job is not None:
                sim_free_at_us = await self._run_stage(
                    name, job, sim_free_at_us
                )
                continue

            async with cond:
                if self._routable_depth(name) == 0:
                    continue  # another worker drained it as we re-locked
                # Non-clairvoyant dispatch: when the worker frees up (or
                # the earliest queued request arrives, if later) it can
                # only see requests that have arrived by that simulated
                # instant -- even if an unscaled replay has already
                # enqueued the future.
                earliest = min(
                    q[0].arrival_us
                    for model, q in self._queues.items()
                    if q and self._serves(name, model)
                )
                now_us = max(sim_free_at_us, earliest)
                snapshots, depths = self._visible_snapshots(now_us, name)
                model = self.discipline.select(tuple(snapshots))
                # Captured at selection time (the snapshots die with the
                # lock); attached to the batch span at dispatch.
                sched_attrs = (
                    self.discipline.trace_attributes(snapshots, model)
                    if self.tracer.enabled else None
                )
                queue = self._queues[model]
                depth = depths[model]
                visible_total = sum(depths.values())
                stages = self._stages_of(model)
                replicas = self._replica_count(model)

                # Precision autoswitching: under backlog, serve APNN
                # traffic at a downgraded wXaY pair priced through the
                # same plan cache.  Sharded models always run at their
                # configured precision: a mid-pipeline precision change
                # would split one batch across two plans.
                switched = False
                batch_accuracy_delta = 0.0
                pair = getattr(backend, "pair", None)
                if (
                    stages is None
                    and self.autoswitch is not None
                    and isinstance(backend, APNNBackend)
                ):
                    degraded = self.autoswitch.pair_for_depth(
                        backend.pair, visible_total
                    )
                    if degraded != backend.pair:
                        switched = True
                        # priced at the backend's default pair; for
                        # mixed-precision backends (whose sub-rung layer
                        # overrides are preserved) this is an upper bound
                        batch_accuracy_delta = accuracy_delta(
                            backend.pair, degraded
                        )
                        pair = degraded
                if stages is not None:
                    pricing = tuple(
                        (
                            self._stage_engines[(model, s.index, s.worker)],
                            s.input_shape,
                        )
                        for s in stages
                    )
                else:
                    engine = self._engine_for(
                        model, name, backend, device,
                        pair if switched else None,
                    )
                    pricing = ((engine, self.models[model].input_shape),)
                slo_ms = self.slo_ms_for(model)
                price = self._pipeline_price_fn(pricing)
                eligible = self.batcher.eligible_batches(depth, replicas)
                cold_specs = tuple(
                    (e, b, s)
                    for e, s in pricing
                    for b in self.plan_cache.missing_batches(e, eligible, s)
                )
                if cold_specs:
                    # Cold cache: the batch sweep would compile inside
                    # the lock and stall the whole event loop until the
                    # cache warmed.  Reserve the visible requests (so
                    # this worker's claim survives the await, exactly as
                    # the old synchronous compile implied) and compile
                    # them off-loop below.
                    reserved = [queue.popleft() for _ in range(depth)]
                    # The reservation *is* the dispatch-order commitment
                    # (it pops the arrival-sorted head under the lock),
                    # so the reorder watermark advances here -- a
                    # co-replica warm-dispatching later arrivals during
                    # this worker's off-loop compile is not a reorder.
                    self.metrics.record_dispatch(
                        model,
                        reserved[0].arrival_us,
                        reserved[-1].arrival_us,
                    )
                else:
                    try:
                        decision = self.batcher.choose(
                            depth, price, slo_ms=slo_ms, replicas=replicas,
                        )
                    except Exception as exc:
                        # Pricing failed on a warm plan (rare; compile
                        # failures surface on the cold path below).
                        # Fail the visible requests' futures instead of
                        # killing the worker and hanging every submit().
                        for r in [queue.popleft() for _ in range(depth)]:
                            if not r.future.done():
                                r.future.set_exception(exc)
                        # the queue shrank: wake placement-parked
                        # workers so a stop()-drain re-checks its exit
                        cond.notify_all()
                        continue
                    take = min(decision.batch_size, depth)
                    batch = [queue.popleft() for _ in range(take)]
                    self.metrics.record_dispatch(
                        model, batch[0].arrival_us, batch[-1].arrival_us
                    )
                    self._served_counts[model] += take
                    self._slo_infeasible[model] = not decision.meets_slo
                    if stages is not None:
                        self._pipeline_inflight += 1
                    self._promote_deferred()

            if cold_specs:
                # Compile off-loop; single-flight dedupes racing workers
                # on shared keys.  Only this batch's dispatch waits --
                # other workers keep draining warm queues and clients
                # keep submitting for the whole compile.
                stall_t0 = time.perf_counter()
                try:
                    compiled = await asyncio.gather(*(
                        self.plan_cache.ensure_async(
                            e, b, s, executor=self._executor
                        )
                        for e, b, s in cold_specs
                    ))
                except Exception as exc:
                    # Compilation failed (e.g. a model/input-shape
                    # mismatch).  Mirror the warm path's planning-error
                    # handling: fail the reserved requests' futures and
                    # keep the worker alive.  (Compiles this worker did
                    # perform before the failure are counted by the plan
                    # cache's own stats.)
                    self.metrics.record_cold_compile(
                        0, (time.perf_counter() - stall_t0) * 1e6
                    )
                    for r in reserved:
                        if not r.future.done():
                            r.future.set_exception(exc)
                    async with cond:
                        # reserved work evaporated: wake parked workers
                        # so a stop()-drain re-checks its exit condition
                        cond.notify_all()
                    continue
                # sum(compiled): only keys *this* worker actually
                # compiled -- coalesced waits on another worker's
                # in-flight compile must not double-count.
                stall_us = (time.perf_counter() - stall_t0) * 1e6
                self.metrics.record_cold_compile(sum(compiled), stall_us)
                if self.tracer.enabled:
                    # The compiles themselves are wall-track spans from
                    # the plan cache; this sim-track instant marks which
                    # dispatch absorbed the stall.
                    self.tracer.event(
                        f"cold-dispatch:{model}", "compile", now_us,
                        lane=name, model=model, worker=name,
                        plans=sum(compiled), stall_wall_us=stall_us,
                    )
                async with cond:
                    # Decide with the depth captured at selection time:
                    # the old in-lock compile saw exactly this backlog,
                    # so warm-up must not change any batching outcome.
                    try:
                        decision = self.batcher.choose(
                            depth, price, slo_ms=slo_ms, replicas=replicas,
                        )
                    except Exception as exc:
                        # A capacity-squeezed cache may have evicted a
                        # just-compiled key; a recompile can re-raise.
                        for r in reserved:
                            if not r.future.done():
                                r.future.set_exception(exc)
                        cond.notify_all()
                        continue
                    take = min(decision.batch_size, depth)
                    batch = reserved[:take]
                    rest = reserved[take:]
                    if rest:
                        # Un-commit the returned leftovers first: the
                        # reserve advanced the reorder watermark over
                        # them, and their later (front-of-queue)
                        # dispatch must not count as a reorder.
                        self.metrics.note_out_of_order_submit(
                            model, rest[0].arrival_us
                        )
                        # Unclaimed leftovers rejoin at the head (they
                        # are the earliest arrivals) and idle workers
                        # are woken to serve them.
                        queue.extendleft(reversed(rest))
                        stamps = [r.arrival_us for r in queue]
                        if any(
                            a > b for a, b in zip(stamps, stamps[1:])
                        ):
                            # an out-of-order submit landed mid-compile;
                            # restore the arrival-sorted invariant
                            # _enqueue's bisect relies on (stable: ties
                            # keep leftovers-first order)
                            ordered = sorted(
                                queue, key=lambda r: r.arrival_us
                            )
                            queue.clear()
                            queue.extend(ordered)
                        cond.notify_all()
                    self._served_counts[model] += take
                    self._slo_infeasible[model] = not decision.meets_slo
                    if stages is not None:
                        self._pipeline_inflight += 1
                    self._promote_deferred()

            if stages is not None:
                # Pipeline dispatch: this worker owns stage 0; serve it
                # and hand the batch down the stage chain.
                job = _StageJob(
                    model=model,
                    stages=stages,
                    stage_idx=0,
                    requests=batch,
                    batch_size=decision.batch_size,
                    expected_latency_us=decision.expected_latency_us,
                    meets_slo=decision.meets_slo,
                    depth=depth,
                    slo_us=slo_ms * 1000.0,
                    pair_name=pair.name if pair is not None else "",
                    ready_us=now_us,
                    start_us=now_us,
                    sched_attrs=sched_attrs,
                    cold=bool(cold_specs),
                )
                sim_free_at_us = await self._run_stage(
                    name, job, sim_free_at_us
                )
                continue

            start_us = now_us
            finish_us = start_us + decision.expected_latency_us
            sim_free_at_us = finish_us
            self._sim_now_us = max(self._sim_now_us, finish_us)
            self._last_finish_us = max(self._last_finish_us, finish_us)

            # Occupy the (scaled) event loop for the modeled service time
            # so concurrent workers interleave like real executors.
            await asyncio.sleep(
                decision.expected_latency_us * self.time_scale
            )

            slo_us = slo_ms * 1000.0
            results = [
                RequestResult(
                    request_id=r.request_id,
                    model=r.model,
                    worker=name,
                    batch_size=decision.batch_size,
                    batch_requests=len(batch),
                    arrival_us=r.arrival_us,
                    start_us=start_us,
                    finish_us=finish_us,
                    deadline_us=r.arrival_us + slo_us,
                    pair=pair.name if pair is not None else "",
                    switched=switched,
                )
                for r in batch
            ]
            self.metrics.record_batch(
                name,
                batch_size=decision.batch_size,
                requests=len(batch),
                queue_depth=depth,
                service_us=decision.expected_latency_us,
                request_latencies_us=[res.latency_us for res in results],
                meets_slo=decision.meets_slo,
                deadline_misses=sum(
                    not res.met_deadline for res in results
                ),
                switched=switched,
                accuracy_delta=batch_accuracy_delta,
            )
            if self.tracer.enabled:
                self._trace_batch(
                    name, model, engine, self.models[model].input_shape,
                    decision.batch_size, decision.expected_latency_us,
                    decision.meets_slo, results, depth,
                    start_us, finish_us,
                    pair_name=pair.name if pair is not None else "",
                    switched=switched,
                    plan_cache_hit=not cold_specs,
                    sched_attrs=sched_attrs,
                )
            for r, res in zip(batch, results):
                if not r.future.done():
                    r.future.set_result(res)
            if self.placement_controller is not None:
                # Placement routing can leave non-owner workers parked
                # on the condition during a stop()-drain; wake them so
                # they re-check the exit condition once work resolves.
                async with cond:
                    cond.notify_all()

    def _pipeline_price_fn(self, pricing):
        """Whole-request price: the sum of every (stage) engine's total."""
        return lambda batch: sum(
            self.plan_cache.total_us(e, batch, s) for e, s in pricing
        )

    # ------------------------------------------------------------------
    # tracing (every caller guards with ``self.tracer.enabled``)
    # ------------------------------------------------------------------
    def _trace_admission(self, req: _PendingRequest, outcome: str) -> None:
        """Instant event for one admission decision, at the arrival stamp."""
        self.tracer.event(
            f"admission:{outcome}", "admission", req.arrival_us,
            lane="admission",
            model=req.model, request_id=req.request_id, outcome=outcome,
            queue_depth=self.queue_depth, deferred_depth=self.deferred_depth,
        )

    def _trace_batch(
        self,
        worker: str,
        model: str,
        engine: InferenceEngine,
        input_shape: tuple[int, ...],
        batch_size: int,
        expected_latency_us: float,
        meets_slo: bool,
        results: list[RequestResult],
        depth: int,
        start_us: float,
        finish_us: float,
        *,
        pair_name: str,
        switched: bool,
        plan_cache_hit: bool,
        sched_attrs: dict | None,
    ) -> int:
        """One dispatched batch: batch span + kernel children + requests."""
        attrs = {
            "model": model, "worker": worker,
            "batch_size": batch_size, "requests": len(results),
            "queue_depth": depth,
            "expected_latency_us": expected_latency_us,
            "meets_slo": meets_slo,
            "pair": pair_name, "switched": switched,
            "plan_cache_hit": plan_cache_hit,
        }
        if sched_attrs:
            attrs.update(sched_attrs)
        batch_id = self.tracer.span(
            f"batch:{model}", "batch", start_us, finish_us,
            lane=worker, **attrs,
        )
        self._trace_kernels(
            batch_id, worker, engine, batch_size, input_shape, start_us
        )
        self._trace_requests(batch_id, worker, results)
        return batch_id

    def _trace_kernels(
        self,
        parent_id: int,
        lane: str,
        engine: InferenceEngine,
        batch_size: int,
        input_shape: tuple[int, ...],
        start_us: float,
    ) -> None:
        """Per-fused-group kernel child spans under one batch/stage span.

        The plan is read through :meth:`PlanCache.peek_plan` (pure read:
        no hit/miss churn, no LRU reorder -- a traced run's cache stats
        stay byte-identical to an untraced one) and priced with the
        engine's own latency model, so the children tile the parent
        exactly: group latencies sum to the plan total the dispatch was
        priced with.  Each child carries the group's merged
        :class:`ExecutionCounters` as attributes -- the counter-to-phase
        attribution at the kernel boundary.
        """
        plan = self.plan_cache.peek_plan(engine, batch_size, input_shape)
        if plan is None:
            return  # evicted since dispatch: keep the parent span only
        latency_model = engine.latency_model
        t = start_us
        for group in plan.groups:
            duration_us = sum(
                latency_model.latency_us(c) for c in group.costs
            )
            counters = ExecutionCounters()
            for c in group.costs:
                counters.merge(c.counters)
            self.tracer.span(
                f"kernel:{group.name}", "kernel", t, t + duration_us,
                parent_id=parent_id, lane=lane,
                kind=group.kind, kernels=len(group.costs),
                **counters.as_dict(),
            )
            t += duration_us

    def _trace_requests(
        self, batch_id: int, worker: str, results: list[RequestResult]
    ) -> None:
        """Request spans: arrival -> finish, with queue/execute children.

        The two children partition the request exactly -- queue wait
        (arrival to batch start) plus execution (batch start to finish)
        is the whole simulated latency, which is what lets the coverage
        test demand >= 95% attribution for every request.
        """
        for res in results:
            req_span = self.tracer.span(
                f"request:{res.request_id}", "request",
                res.arrival_us, res.finish_us, lane=res.model,
                request_id=res.request_id, model=res.model,
                worker=worker, batch_span=batch_id,
            )
            self.tracer.span(
                "queue", "queue", res.arrival_us, res.start_us,
                parent_id=req_span, lane=res.model,
            )
            self.tracer.span(
                "execute", "dispatch", res.start_us, res.finish_us,
                parent_id=req_span, lane=res.model, batch_span=batch_id,
            )

    def _trace_pipeline(
        self,
        worker: str,
        job: _StageJob,
        results: list[RequestResult],
        finish_us: float,
    ) -> None:
        """Retroactive span hierarchy for one fully resolved pipeline batch.

        Emitted by the final stage from the bounds each stage recorded
        as it ran: batch span (stage-0 start to last-stage finish) ->
        per-stage children on their own worker lanes -> per-stage kernel
        grandchildren, plus the request spans.
        """
        attrs = {
            "model": job.model, "worker": worker,
            "batch_size": job.batch_size, "requests": len(results),
            "queue_depth": job.depth,
            "expected_latency_us": job.expected_latency_us,
            "meets_slo": job.meets_slo,
            "pair": job.pair_name, "switched": False,
            "plan_cache_hit": not job.cold,
            "pipeline": True,
            "stages": [s.worker for s in job.stages],
        }
        if job.sched_attrs:
            attrs.update(job.sched_attrs)
        batch_id = self.tracer.span(
            f"batch:{job.model}", "batch", job.start_us, finish_us,
            lane=worker, **attrs,
        )
        for stage, (s0, s1) in zip(job.stages, job.stage_bounds):
            engine = self._stage_engines[
                (job.model, stage.index, stage.worker)
            ]
            stage_span = self.tracer.span(
                f"stage:{job.model}[{stage.index}]", "stage", s0, s1,
                parent_id=batch_id, lane=stage.worker,
                model=job.model, stage=stage.index,
                batch_size=job.batch_size, requests=len(results),
            )
            self._trace_kernels(
                stage_span, stage.worker, engine,
                job.batch_size, stage.input_shape, s0,
            )
        self._trace_requests(batch_id, worker, results)

    async def _run_stage(
        self, name: str, job: _StageJob, sim_free_at_us: float
    ) -> float:
        """Serve one pipeline stage on this worker; forward or resolve.

        The stage plan is warm by construction -- the stage-0 dispatch
        cold-compiled every stage's eligible batches through
        ``ensure_async`` before deciding -- so pricing here never stalls
        the loop.  Returns the worker's new free watermark.
        """
        stage = job.stages[job.stage_idx]
        engine = self._stage_engines[(job.model, job.stage_idx, name)]
        try:
            if self.plan_cache.peek_total_us(
                engine, job.batch_size, stage.input_shape
            ) is None:
                # A capacity-squeezed cache evicted the stage plan
                # between dispatch and this handoff: recompile off-loop
                # (single-flight) rather than stalling the event loop.
                await self.plan_cache.ensure_async(
                    engine, job.batch_size, stage.input_shape,
                    executor=self._executor,
                )
            # warm by now; no awaits since the ensure, so it cannot
            # have been evicted again before this lookup
            service_us = self.plan_cache.total_us(
                engine, job.batch_size, stage.input_shape
            )
        except Exception as exc:
            # Recompilation failed: fail the batch's futures and keep
            # the worker alive -- a dead worker task would strand
            # _pipeline_inflight and hang stop() and every client.
            for r in job.requests:
                if not r.future.done():
                    r.future.set_exception(exc)
            async with self._cond:
                self._pipeline_inflight -= 1
                self._cond.notify_all()
            return sim_free_at_us
        start_us = max(sim_free_at_us, job.ready_us)
        finish_us = start_us + service_us
        if job.stage_idx == 0:
            job.start_us = start_us
        self._sim_now_us = max(self._sim_now_us, finish_us)
        self._last_finish_us = max(self._last_finish_us, finish_us)

        await asyncio.sleep(service_us * self.time_scale)
        self.metrics.record_stage(
            job.model, job.stage_idx, name, service_us, len(job.requests)
        )
        if self.tracer.enabled:
            job.stage_bounds.append((start_us, finish_us))

        if job.stage_idx + 1 < len(job.stages):
            next_worker = job.stages[job.stage_idx + 1].worker
            job.stage_idx += 1
            job.ready_us = finish_us
            async with self._cond:
                self._stage_queues[next_worker].append(job)
                self._cond.notify_all()
            return finish_us

        stage_workers = tuple(s.worker for s in job.stages)
        results = [
            RequestResult(
                request_id=r.request_id,
                model=r.model,
                worker=name,
                batch_size=job.batch_size,
                batch_requests=len(job.requests),
                arrival_us=r.arrival_us,
                start_us=job.start_us,
                finish_us=finish_us,
                deadline_us=r.arrival_us + job.slo_us,
                pair=job.pair_name,
                stages=stage_workers,
            )
            for r in job.requests
        ]
        self.metrics.record_batch(
            name,
            batch_size=job.batch_size,
            requests=len(job.requests),
            queue_depth=job.depth,
            # modeled pure service of the whole pipeline -- the same
            # definition the non-pipeline path records (inter-stage
            # queueing still shows up in the request latencies, and
            # per-stage service is billed to StageMetrics)
            service_us=job.expected_latency_us,
            request_latencies_us=[res.latency_us for res in results],
            meets_slo=job.meets_slo,
            deadline_misses=sum(not res.met_deadline for res in results),
        )
        if self.tracer.enabled:
            self._trace_pipeline(name, job, results, finish_us)
        async with self._cond:
            self._pipeline_inflight -= 1
            self._cond.notify_all()
        for r, res in zip(job.requests, results):
            if not r.future.done():
                r.future.set_result(res)
        return finish_us
