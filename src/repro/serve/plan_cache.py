"""Compiled-plan memoization for the serving layer.

Planning a model (fusion walk, dataflow assignment, tile autotuning, cost
assembly) is the expensive half of pricing it -- tens of milliseconds per
(model, backend, batch) combination, against microseconds to re-price an
existing :class:`~repro.nn.engine.CompiledPlan`.  A serving process sees
the same handful of combinations millions of times, so the cache keys
plans by every planning input:

* model name and input shape,
* backend identity *including* the precision configuration (a mixed
  per-layer override produces a different key than the uniform pair),
* device,
* batch size, and
* the latency model's calibration constants (the memoized priced total
  is calibration-dependent even though the plan itself is not).

Eviction is LRU with a configurable capacity; every lookup updates the
hit/miss counters the metrics layer reports.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from ..nn.engine import APNNBackend, BNNBackend, CompiledPlan, InferenceEngine
from ..perf.calibration import Calibration

__all__ = [
    "PlanKey",
    "PlanCacheStats",
    "PlanCache",
    "backend_key",
    "calibration_key",
]


def backend_key(backend) -> str:
    """Canonical cache-key string for a backend's precision config.

    ``backend.name`` alone is ambiguous for mixed-precision APNN backends
    (every override set renders as ``+mixed``), so the key spells out the
    per-layer pairs.
    """
    if isinstance(backend, APNNBackend):
        parts = [f"APNN:{backend.pair.name}",
                 f"first_a{backend.first_layer_activation_bits}"]
        for layer, pair in sorted(backend.layer_pairs, key=lambda lp: lp[0]):
            parts.append(f"{layer}={pair.name}")
        return "|".join(parts)
    if isinstance(backend, BNNBackend):
        return f"BNN|first_a{backend.first_layer_activation_bits}"
    return backend.name


def calibration_key(calibration: Calibration) -> tuple:
    """Hashable fingerprint of a calibration's fitted constants."""
    parts = []
    for f in dataclasses.fields(calibration):
        value = getattr(calibration, f.name)
        if isinstance(value, Mapping):
            value = tuple(sorted(value.items()))
        parts.append((f.name, value))
    return tuple(parts)


@dataclass(frozen=True)
class PlanKey:
    """Identity of one compiled plan and its priced total."""

    model: str
    backend: str
    device: str
    batch: int
    input_shape: tuple[int, ...]
    calibration: tuple


@dataclass(frozen=True)
class PlanCacheStats:
    """Lookup counters since construction (or the last ``clear()``)."""

    hits: int
    misses: int
    evictions: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache of :class:`CompiledPlan` objects plus their priced totals.

    ``get`` compiles through the supplied engine on a miss; ``total_us``
    additionally memoizes the plan priced with the engine's own latency
    model, which is the hot call of the dynamic batcher's sweep.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._plans: OrderedDict[PlanKey, tuple[CompiledPlan, float]] = (
            OrderedDict()
        )
        # backend_key()/calibration_key() are rebuild-heavy and the
        # batcher's sweep calls them per lookup; memoize per object (the
        # strong ref pins the id).  Bounded and purged by clear().
        self._fingerprints: dict[int, tuple[object, object]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def key_for(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...],
    ) -> PlanKey:
        return PlanKey(
            model=engine.model.name,
            backend=self._memo_key(engine.backend, backend_key),
            device=engine.device.name,
            batch=batch,
            input_shape=tuple(input_shape),
            calibration=self._memo_key(
                engine.latency_model.calibration, calibration_key
            ),
        )

    def _memo_key(self, obj, compute):
        entry = self._fingerprints.get(id(obj))
        if entry is None or entry[0] is not obj:
            if len(self._fingerprints) >= 1024:
                self._fingerprints.clear()
            entry = (obj, compute(obj))
            self._fingerprints[id(obj)] = entry
        return entry[1]

    def get(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
    ) -> CompiledPlan:
        """Cached compiled plan for (engine's model/backend/device, batch)."""
        return self._lookup(engine, batch, input_shape)[0]

    def total_us(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
    ) -> float:
        """Cached end-to-end modeled latency of the plan, in microseconds."""
        return self._lookup(engine, batch, input_shape)[1]

    def _lookup(self, engine, batch, input_shape):
        key = self.key_for(engine, batch, input_shape)
        entry = self._plans.get(key)
        if entry is not None:
            self._hits += 1
            self._plans.move_to_end(key)
            return entry
        self._misses += 1
        plan = engine.compile(batch, input_shape)
        total = plan.price(engine.latency_model).total_us
        self._plans[key] = (plan, total)
        if len(self._plans) > self.max_entries:
            self._plans.popitem(last=False)
            self._evictions += 1
        return plan, total

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    def stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._plans),
        )

    def clear(self) -> None:
        self._plans.clear()
        self._fingerprints.clear()
        self._hits = self._misses = self._evictions = 0
