"""Compiled-plan memoization for the serving layer.

Planning a model (fusion walk, dataflow assignment, tile autotuning, cost
assembly) is the expensive half of pricing it -- tens of milliseconds per
(model, backend, batch) combination, against microseconds to re-price an
existing :class:`~repro.nn.engine.CompiledPlan`.  A serving process sees
the same handful of combinations millions of times, so the cache keys
plans by every planning input:

* model name and input shape,
* backend identity *including* the precision configuration (a mixed
  per-layer override produces a different key than the uniform pair),
* device,
* batch size, and
* the latency model's calibration constants (the memoized priced total
  is calibration-dependent even though the plan itself is not).

Eviction is LRU with a configurable capacity; every lookup updates the
hit/miss counters the metrics layer reports.

Cold starts are handled by two mechanisms on top of the LRU memo:

* :meth:`PlanCache.ensure_async` compiles a missing key in a thread
  executor with **single-flight deduplication** -- N coroutines racing
  on one cold key trigger exactly one ``engine.compile()``; the rest
  await the same in-flight future.  The event loop keeps scheduling
  other work (submissions, warm dispatches) for the whole compile.
* :class:`PlanCacheStore` persists every compiled plan (and its priced
  total) as JSON lines under a cache directory.  A cache constructed
  over a populated store starts warm: a restarted server replans
  nothing.  Records carry a schema version, so a stale cache file from
  an older layout degrades to a cold start instead of corrupt plans.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core import backends
from ..nn.engine import APNNBackend, BNNBackend, CompiledPlan, InferenceEngine
from ..obs import NULL_TRACER
from ..perf.calibration import Calibration

__all__ = [
    "PlanKey",
    "PlanCacheStats",
    "PlanCache",
    "PlanCacheStore",
    "STORE_SCHEMA_VERSION",
    "backend_key",
    "calibration_key",
]

#: Capacity of the per-object fingerprint memo (see ``PlanCache._memo_key``).
_MEMO_CAPACITY = 1024

#: Schema version stamped on every persisted plan record.  Bump when the
#: serialized layout of :class:`~repro.nn.engine.CompiledPlan` or
#: :class:`PlanKey` changes; loads skip records from any other version.
#:
#: v2: plan identity includes the kernel backend
#: (:mod:`repro.core.backends`), so plans compiled under one backend are
#: never served to a process running another.
STORE_SCHEMA_VERSION = 2


def backend_key(backend) -> str:
    """Canonical cache-key string for a backend's precision config.

    ``backend.name`` alone is ambiguous for mixed-precision APNN backends
    (every override set renders as ``+mixed``), so the key spells out the
    per-layer pairs.
    """
    if isinstance(backend, APNNBackend):
        parts = [f"APNN:{backend.pair.name}",
                 f"first_a{backend.first_layer_activation_bits}"]
        for layer, pair in sorted(backend.layer_pairs, key=lambda lp: lp[0]):
            parts.append(f"{layer}={pair.name}")
        return "|".join(parts)
    if isinstance(backend, BNNBackend):
        return f"BNN|first_a{backend.first_layer_activation_bits}"
    return backend.name


def calibration_key(calibration: Calibration) -> tuple:
    """Hashable fingerprint of a calibration's fitted constants."""
    parts = []
    for f in dataclasses.fields(calibration):
        value = getattr(calibration, f.name)
        if isinstance(value, Mapping):
            value = tuple(sorted(value.items()))
        parts.append((f.name, value))
    return tuple(parts)


def _freeze(value):
    """Recursively turn JSON lists back into the tuples hashing needs."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class PlanKey:
    """Identity of one compiled plan and its priced total."""

    model: str
    backend: str
    device: str
    batch: int
    input_shape: tuple[int, ...]
    calibration: tuple
    #: Active kernel backend (:mod:`repro.core.backends`) -- plan cost
    #: facts like ``compiled_kernels`` are backend-dependent, so a cache
    #: must never return a plan compiled under a different backend.
    kernel_backend: str = "numpy"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (tuples flatten to arrays)."""
        return {
            "model": self.model,
            "backend": self.backend,
            "device": self.device,
            "batch": self.batch,
            "input_shape": list(self.input_shape),
            "calibration": self.calibration,
            "kernel_backend": self.kernel_backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanKey":
        return cls(
            model=data["model"],
            backend=data["backend"],
            device=data["device"],
            batch=data["batch"],
            input_shape=tuple(data["input_shape"]),
            calibration=_freeze(data["calibration"]),
            kernel_backend=data.get("kernel_backend", "numpy"),
        )


@dataclass(frozen=True)
class PlanCacheStats:
    """Lookup counters since construction (or the last ``clear()``).

    Beyond the LRU's hit/miss/eviction accounting, the cold-start fields
    say where plans came from and what they cost to make:

    * ``compiles`` -- ``engine.compile()`` calls the cache performed;
      ``inloop_compiles`` of them ran synchronously on the caller's
      thread (the event-loop stall the async path exists to avoid),
      the rest in an executor via :meth:`PlanCache.ensure_async`.
    * ``coalesced`` -- async callers that found their key already
      in flight and waited on the single compile instead of planning.
    * ``persisted_entries`` -- plans loaded from the store at
      construction; ``persisted_hits`` -- lookups those plans served.
    * ``compile_us`` -- total wall-clock microseconds spent compiling.
    * ``store_recovered_lines`` -- damaged store lines (torn appends,
      corrupt bytes) the construction-time load skipped and survived.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    compiles: int = 0
    inloop_compiles: int = 0
    coalesced: int = 0
    persisted_entries: int = 0
    persisted_hits: int = 0
    compile_us: float = 0.0
    store_recovered_lines: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def offloaded_compiles(self) -> int:
        """Compiles that ran in an executor, off the event loop."""
        return self.compiles - self.inloop_compiles


class PlanCacheStore:
    """Append-only JSON-lines persistence for compiled plans.

    One line per ``(PlanKey, CompiledPlan, priced total)``; the cache
    appends on every miss and loads the whole file on construction, so a
    restarted server starts with yesterday's plans already warm.  Loading
    is defensive: records whose schema version differs from
    :data:`STORE_SCHEMA_VERSION`, truncated lines, malformed JSON, and
    undecodable bytes are all skipped (a stale or damaged cache degrades
    to recompilation, never to a corrupt plan).  Damage is the expected
    failure mode of this file -- a worker killed mid-append leaves a
    truncated trailing line, and concurrent multi-process appends can
    tear -- so every *damaged* line skipped by the most recent
    :meth:`load` is counted in :attr:`recovered_lines` (stale-but-intact
    schema versions are a planned migration path, not damage, and are
    not counted).  Duplicate keys keep the newest record.
    """

    def __init__(
        self, cache_dir: str | Path, filename: str = "plans.jsonl"
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / filename
        #: Damaged lines the most recent :meth:`load` skipped (torn
        #: appends, corrupt bytes); the metrics layer surfaces this as
        #: ``store_recovered_lines``.
        self.recovered_lines = 0

    def load(self) -> OrderedDict[PlanKey, tuple[CompiledPlan, float]]:
        """Every valid persisted record, oldest first (last write wins)."""
        entries: OrderedDict[PlanKey, tuple[CompiledPlan, float]] = (
            OrderedDict()
        )
        recovered = 0
        if not self.path.exists():
            self.recovered_lines = 0
            return entries
        # Binary read: a corrupt line with invalid UTF-8 must damage only
        # itself, not raise out of the file iterator and take the whole
        # (otherwise intact) store down with it.
        with self.path.open("rb") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    recovered += 1  # torn append / corrupt bytes
                    continue
                if not isinstance(record, dict):
                    recovered += 1
                    continue
                if record.get("version") != STORE_SCHEMA_VERSION:
                    continue  # planned schema migration, not damage
                try:
                    key = PlanKey.from_dict(record["key"])
                    plan = CompiledPlan.from_dict(record["plan"])
                    total = float(record["total_us"])
                except (KeyError, TypeError, ValueError):
                    recovered += 1  # structurally damaged record
                    continue
                entries[key] = (plan, total)
                entries.move_to_end(key)
        self.recovered_lines = recovered
        return entries

    def append(
        self, key: PlanKey, plan: CompiledPlan, total_us: float
    ) -> None:
        """Persist one freshly compiled plan (creates the dir lazily)."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        record = {
            "version": STORE_SCHEMA_VERSION,
            "key": key.to_dict(),
            "total_us": total_us,
            "plan": plan.to_dict(),
        }
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")

    def __len__(self) -> int:
        return len(self.load())


class PlanCache:
    """LRU cache of :class:`CompiledPlan` objects plus their priced totals.

    ``get`` compiles through the supplied engine on a miss; ``total_us``
    additionally memoizes the plan priced with the engine's own latency
    model, which is the hot call of the dynamic batcher's sweep.  Both are
    synchronous and stall their caller on a cold key; the serving layer
    avoids that with :meth:`missing_batches` + :meth:`ensure_async`, which
    compile off-thread with single-flight deduplication.  Constructing the
    cache over a :class:`PlanCacheStore` preloads every persisted plan and
    appends each new compile, so plans survive process restarts.
    """

    def __init__(
        self,
        max_entries: int = 256,
        store: PlanCacheStore | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        #: Observability hook (the server installs its tracer here).
        #: Compiles are wall-clock work on executor threads, so they
        #: trace as wall-track spans, never simulated time.
        self.tracer = NULL_TRACER
        self._plans: OrderedDict[PlanKey, tuple[CompiledPlan, float]] = (
            OrderedDict()
        )
        # backend_key()/calibration_key() are rebuild-heavy and the
        # batcher's sweep calls them per lookup; memoize per object (the
        # strong ref pins the id).  LRU-bounded at _MEMO_CAPACITY: going
        # over evicts the stalest entries one by one, never the whole
        # working set at once.
        self._fingerprints: OrderedDict[int, tuple[object, object]] = (
            OrderedDict()
        )
        # Single-flight registry: PlanKey -> future of the one in-flight
        # compile.  Entries never outlive their ensure_async call.
        self._inflight: dict[PlanKey, asyncio.Future] = {}
        # Keys whose cached entry came from the persistent store.
        self._persisted: set[PlanKey] = set()
        # _compile runs on executor threads; timing counters take a lock.
        self._timing_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compiles = 0
        self._inloop_compiles = 0
        self._coalesced = 0
        self._persisted_entries = 0
        self._persisted_hits = 0
        self._compile_us = 0.0
        self._store_recovered_lines = 0
        if store is not None:
            for key, entry in store.load().items():
                self._plans[key] = entry
                self._persisted.add(key)
            while len(self._plans) > self.max_entries:
                evicted, _ = self._plans.popitem(last=False)
                self._persisted.discard(evicted)
            self._persisted_entries = len(self._persisted)
            self._store_recovered_lines = store.recovered_lines

    # ------------------------------------------------------------------
    def key_for(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...],
    ) -> PlanKey:
        return PlanKey(
            model=engine.model.name,
            backend=self._memo_key(engine.backend, backend_key),
            device=engine.device.name,
            batch=batch,
            input_shape=tuple(input_shape),
            calibration=self._memo_key(
                engine.latency_model.calibration, calibration_key
            ),
            kernel_backend=backends.get_backend().name,
        )

    def _memo_key(self, obj, compute):
        entry = self._fingerprints.get(id(obj))
        if entry is not None and entry[0] is obj:
            self._fingerprints.move_to_end(id(obj))
            return entry[1]
        entry = (obj, compute(obj))
        self._fingerprints[id(obj)] = entry
        self._fingerprints.move_to_end(id(obj))
        while len(self._fingerprints) > _MEMO_CAPACITY:
            self._fingerprints.popitem(last=False)
        return entry[1]

    def get(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
    ) -> CompiledPlan:
        """Cached compiled plan for (engine's model/backend/device, batch)."""
        return self._lookup(engine, batch, input_shape)[0]

    def total_us(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
    ) -> float:
        """Cached end-to-end modeled latency of the plan, in microseconds."""
        return self._lookup(engine, batch, input_shape)[1]

    def peek_total_us(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
    ) -> float | None:
        """The priced total if (and only if) the key is already warm.

        A pure read: no compile, no LRU reorder, no counter churn.  The
        placement layer's rebalance decisions run under the server's
        condition lock, where a synchronous compile would stall the
        event loop -- cold models simply skip that epoch instead.
        """
        entry = self._plans.get(self.key_for(engine, batch, input_shape))
        return None if entry is None else entry[1]

    def peek_plan(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
    ) -> CompiledPlan | None:
        """The compiled plan if (and only if) the key is already warm.

        Same pure-read contract as :meth:`peek_total_us`: no compile, no
        LRU reorder, no counter churn.  The tracing layer reads warm
        plans through here so a traced run's cache statistics stay
        byte-identical to an untraced one.
        """
        entry = self._plans.get(self.key_for(engine, batch, input_shape))
        return None if entry is None else entry[0]

    def _lookup(self, engine, batch, input_shape):
        key = self.key_for(engine, batch, input_shape)
        entry = self._plans.get(key)
        if entry is not None:
            self._hits += 1
            if key in self._persisted:
                self._persisted_hits += 1
            self._plans.move_to_end(key)
            return entry
        self._misses += 1
        plan, total = self._compile(key, engine, batch, input_shape, True)
        self._insert(key, plan, total)
        return plan, total

    def _compile(self, key, engine, batch, input_shape, inloop):
        """Plan + price one cache miss (the overridable test seam).

        Runs on the caller's thread for synchronous misses
        (``inloop=True`` -- the event-loop stall the async path exists
        to avoid) or on an executor thread (``inloop=False``).  Only
        timing counters are touched here; cache structures are mutated
        by the caller on the event-loop thread.
        """
        t0 = time.perf_counter()
        plan = engine.compile(batch, tuple(input_shape))
        total = plan.price(engine.latency_model).total_us
        t1 = time.perf_counter()
        elapsed_us = (t1 - t0) * 1e6
        with self._timing_lock:
            self._compiles += 1
            if inloop:
                self._inloop_compiles += 1
            self._compile_us += elapsed_us
        if self.tracer.enabled:
            # Tracer appends are thread-safe; executor compiles land as
            # they finish on the wall-clock track.
            self.tracer.span(
                f"plan-compile:{key.model}", "compile",
                t0 * 1e6, t1 * 1e6,
                track="wall", lane="plan-compile",
                model=key.model, backend=key.backend, batch=batch,
                in_loop=inloop, priced_total_us=total,
            )
        return plan, total

    def _insert(self, key, plan, total, persist=True):
        self._plans[key] = (plan, total)
        self._persisted.discard(key)  # a fresh compile supersedes the store
        if persist and self.store is not None:
            self.store.append(key, plan, total)
        if len(self._plans) > self.max_entries:
            evicted, _ = self._plans.popitem(last=False)
            self._persisted.discard(evicted)
            self._evictions += 1

    # ------------------------------------------------------------------
    # async path (cold keys, single-flight)
    # ------------------------------------------------------------------
    def missing_batches(
        self,
        engine: InferenceEngine,
        batches: Sequence[int],
        input_shape: tuple[int, ...],
    ) -> tuple[int, ...]:
        """The candidate batches whose plans are not cached yet."""
        return tuple(
            b for b in batches
            if self.key_for(engine, b, input_shape) not in self._plans
        )

    def _compile_and_persist(self, key, engine, batch, input_shape):
        """Executor-side half of ``ensure_async``: plan, price, persist.

        The store append stays off the event-loop thread with the
        compile -- blocking disk I/O per plan would reintroduce exactly
        the loop stall the async path removes.
        """
        plan, total = self._compile(key, engine, batch, input_shape, False)
        if self.store is not None:
            self.store.append(key, plan, total)
        return plan, total

    async def ensure_async(
        self,
        engine: InferenceEngine,
        batch: int,
        input_shape: tuple[int, ...] = (3, 224, 224),
        *,
        executor=None,
    ) -> bool:
        """Compile-and-cache one key without stalling the event loop.

        Single-flight: concurrent callers racing on one cold key trigger
        exactly one ``engine.compile()``; the rest await the same
        in-flight future (and see its exception if it fails).  The
        compile+price (and the store append, when persisting) runs in
        ``executor`` (``None`` = the loop's default thread pool), so the
        event loop keeps scheduling other coroutines -- submissions,
        warm dispatches -- for the duration.  A warm key returns
        immediately without touching the hit/miss counters; those belong
        to the pricing lookups.

        Returns ``True`` when this call performed the compile, ``False``
        when the key was already warm or another caller's in-flight
        compile covered it.
        """
        key = self.key_for(engine, batch, input_shape)
        if key in self._plans:
            return False
        inflight = self._inflight.get(key)
        if inflight is not None:
            self._coalesced += 1
            await inflight
            return False
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            plan, total = await loop.run_in_executor(
                executor, self._compile_and_persist,
                key, engine, batch, input_shape,
            )
        except BaseException as exc:
            future.set_exception(exc)
            # waiters re-raise on await; retrieve here so a waiterless
            # failure doesn't log "exception was never retrieved"
            future.exception()
            raise
        else:
            self._misses += 1
            self._insert(key, plan, total, persist=False)
            future.set_result(None)
            return True
        finally:
            del self._inflight[key]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    def stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._plans),
            compiles=self._compiles,
            inloop_compiles=self._inloop_compiles,
            coalesced=self._coalesced,
            persisted_entries=self._persisted_entries,
            persisted_hits=self._persisted_hits,
            compile_us=self._compile_us,
            store_recovered_lines=self._store_recovered_lines,
        )

    def clear(self) -> None:
        self._plans.clear()
        self._fingerprints.clear()
        self._persisted.clear()
        self._hits = self._misses = self._evictions = 0
        self._compiles = self._inloop_compiles = self._coalesced = 0
        self._persisted_entries = self._persisted_hits = 0
        self._compile_us = 0.0
        self._store_recovered_lines = 0
