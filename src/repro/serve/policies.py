"""Load-management policies: admission control and precision autoswitching.

Two runtime policies turn the paper's accuracy/latency dial (Table 1:
more bit-planes, more accuracy, more latency) into serving behavior
under load:

* :class:`AdmissionPolicy` bounds the queue.  When even a batch-1
  dispatch cannot meet the SLO the queue only grows, so past a
  configured depth the server either **sheds** the request (the
  ``submit`` coroutine raises :class:`AdmissionRejected` immediately)
  or **defers** it (parks it outside the queue and admits it once the
  backlog drains below the cap -- the request keeps its original
  arrival stamp, so the extra wait shows up honestly in its latency).
* :class:`PrecisionAutoswitcher` degrades a request batch's ``wXaY``
  pair when the queue crosses depth thresholds -- e.g. ``w2a8`` traffic
  served at ``w1a2`` under backlog.  Every 1-bit BMMA pass the pair
  drops makes the batch cheaper through the very same cost model the
  batcher prices with, and the modeled accuracy given up is reported
  per switch (:func:`modeled_accuracy`).

Both policies are plain frozen dataclasses evaluated on the simulated
clock, so scheduler tests can assert their behavior deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.types import PrecisionPair

__all__ = [
    "AdmissionRejected",
    "AdmissionPolicy",
    "PrecisionAutoswitcher",
    "modeled_accuracy",
    "accuracy_delta",
]

#: Anchors of the modeled accuracy curve: the paper's Table 1 AlexNet
#: ImageNet top-1 at one plane-product extreme and the other (binary
#: w1a1 = 1 bit-plane pass, full precision = the asymptote).
_ACC_FULL = 0.570
_ACC_BINARY = 0.461
#: Exponent fitted so the curve passes near Table 1's w1a2 point (0.557).
_ACC_DECAY = 3.0


def modeled_accuracy(pair: PrecisionPair) -> float:
    """Modeled top-1 accuracy of a ``wXaY`` configuration.

    A saturating curve anchored to the paper's Table 1 AlexNet numbers:
    one bit-plane pass (w1a1) gets the binary accuracy, and accuracy
    approaches the full-precision value as the plane product ``X*Y``
    grows -- ``acc = full - (full - binary) / (X*Y) ** 3``.  This is a
    *model* (the repo trains no ImageNet networks); it exists so the
    autoswitcher can report how much accuracy a precision downgrade
    trades for latency, in the units the paper uses.
    """
    pp = pair.plane_product
    return _ACC_FULL - (_ACC_FULL - _ACC_BINARY) / float(pp) ** _ACC_DECAY


def accuracy_delta(default: PrecisionPair, downgraded: PrecisionPair) -> float:
    """Modeled accuracy given up by serving ``default`` traffic at
    ``downgraded`` (>= 0 for a genuine downgrade)."""
    return modeled_accuracy(default) - modeled_accuracy(downgraded)


class AdmissionRejected(RuntimeError):
    """Raised by ``submit`` when the admission policy sheds a request."""

    def __init__(self, model: str, queue_depth: int, max_queue_depth: int):
        self.model = model
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"request for {model!r} shed: queue depth {queue_depth} at the "
            f"admission cap {max_queue_depth}"
        )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bound the server queue at ``max_queue_depth`` requests.

    ``mode`` selects what happens to a request arriving at the cap:

    * ``"shed"`` -- reject it; ``submit`` raises :class:`AdmissionRejected`
      and the metrics rejection counter increments;
    * ``"defer"`` -- park it outside the queue; workers admit deferred
      requests oldest-first as dispatches free capacity, and the metrics
      deferral counter increments.

    ``slo_gated=True`` additionally requires the SLO to be unattainable
    before the cap bites: the request's model must have last dispatched
    with ``BatchDecision.meets_slo == False`` (no candidate batch --
    batch 1 included -- met the objective).  That is the ROADMAP's
    trigger: when even batch-1 latency busts the SLO the queue only
    grows, so cap it; while the SLO is attainable, queue freely.

    Depth is the instantaneous queued-request count at submission.  For
    burst workloads (and scaled replay) this is exactly the simulated
    backlog; an unscaled paced replay enqueues ahead of the simulated
    clock, so there the policy is conservative (it may act on requests
    the simulation would have drained by then).
    """

    max_queue_depth: int
    mode: str = "shed"
    slo_gated: bool = False

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.mode not in ("shed", "defer"):
            raise ValueError(
                f"mode must be 'shed' or 'defer', got {self.mode!r}"
            )

    def admits(self, queue_depth: int, slo_infeasible: bool = True) -> bool:
        """True when a request may enter a queue currently this deep.

        ``slo_infeasible`` is the model's latest dispatch feasibility
        signal (``not BatchDecision.meets_slo``); it only matters for
        ``slo_gated`` policies, which admit freely while the SLO is
        still attainable.
        """
        if self.slo_gated and not slo_infeasible:
            return True
        return queue_depth < self.max_queue_depth


@dataclass(frozen=True)
class PrecisionAutoswitcher:
    """Depth-triggered ``wXaY`` downgrade ladder.

    ``thresholds`` maps queue depths to precision pairs: at dispatch,
    the highest threshold not exceeding the visible queue depth names
    the pair to serve at.  The policy only ever *downgrades* -- a rung
    whose plane product is not strictly below the model's default pair
    is ignored, so light traffic (and non-APNN backends) always runs at
    the configured precision.

    Example: ``PrecisionAutoswitcher.from_spec({8: "w1a2", 32: "w1a1"})``
    serves at the default pair below depth 8, at w1a2 from depth 8, and
    at w1a1 from depth 32.
    """

    thresholds: tuple[tuple[int, PrecisionPair], ...]

    def __post_init__(self) -> None:
        if not self.thresholds:
            raise ValueError("autoswitcher needs at least one threshold rung")
        depths = [d for d, _ in self.thresholds]
        if any(d < 1 for d in depths):
            raise ValueError(f"threshold depths must be >= 1, got {depths}")
        if len(set(depths)) != len(depths):
            raise ValueError(f"duplicate threshold depths: {depths}")
        if list(self.thresholds) != sorted(self.thresholds, key=lambda t: t[0]):
            raise ValueError("thresholds must be sorted by ascending depth")

    @classmethod
    def from_spec(
        cls, spec: Mapping[int, str] | Iterable[tuple[int, str]]
    ) -> "PrecisionAutoswitcher":
        """Build a ladder from ``{depth: "wXaY"}`` (or pair) entries."""
        items = spec.items() if isinstance(spec, Mapping) else spec
        rungs = tuple(
            sorted(
                ((int(depth), PrecisionPair.parse(name)) for depth, name in items),
                key=lambda rung: rung[0],
            )
        )
        return cls(thresholds=rungs)

    def pair_for_depth(
        self, default: PrecisionPair, queue_depth: int
    ) -> PrecisionPair:
        """Pair to serve at for this backlog (``default`` if no rung fires)."""
        chosen = None
        for depth, pair in self.thresholds:
            if queue_depth >= depth:
                chosen = pair
        if chosen is None or chosen.plane_product >= default.plane_product:
            return default
        return chosen
