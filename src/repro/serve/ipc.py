"""Length-prefixed JSON message framing for cluster worker processes.

The multi-process serving layer (:mod:`repro.serve.cluster`) talks to
its worker subprocesses over ordinary pipes: every message is one JSON
object encoded as UTF-8 and prefixed with a 4-byte big-endian length.
Pipes preserve byte order and the prefix delimits records, so the
protocol needs no sentinels, no line discipline, and no escaping -- a
partially written frame (worker killed mid-send) surfaces as a
:class:`FrameError` or a clean EOF at the reader, never as a garbled
successor message.

JSON payloads are rendered **canonically** (sorted keys, minimal
separators) via :func:`canonical_json`.  The cluster's exactly-once and
failover tests compare result payloads *byte for byte* across replicas
and across retries, which only works when two processes serializing the
same logical result always produce identical bytes.

Both blocking (worker-side: stdin/stdout of a plain subprocess) and
asyncio (coordinator-side: :class:`asyncio.StreamReader` /
``StreamWriter`` from ``create_subprocess_exec``) variants are provided
over the same frame format.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, BinaryIO

__all__ = [
    "IPC_SCHEMA_VERSION",
    "MAX_FRAME_BYTES",
    "FrameError",
    "canonical_json",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "write_frame_async",
]

#: Stamped into every ``hello`` message; a worker refuses to serve a
#: coordinator speaking a different protocol revision.
IPC_SCHEMA_VERSION = 1

#: Upper bound on one frame's payload.  Far above any real cluster
#: message (requests and results are small JSON objects); its job is to
#: turn a corrupt or desynchronized length prefix into a loud
#: :class:`FrameError` instead of a multi-gigabyte allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(RuntimeError):
    """A frame that cannot be parsed: torn write, oversize, bad JSON."""


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN.

    Two processes serializing equal objects produce identical bytes --
    the property the cluster's byte-identical-results invariant rests
    on.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def encode_frame(message: dict[str, Any]) -> bytes:
    """One wire frame: 4-byte big-endian length + canonical JSON."""
    payload = canonical_json(message).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse one frame's payload back into a message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length prefix {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); stream is corrupt or desynchronized"
        )


# ----------------------------------------------------------------------
# blocking (worker subprocess side)
# ----------------------------------------------------------------------
def _read_exact(stream: BinaryIO, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF at a frame boundary.

    EOF *inside* a frame (the peer died mid-write) is a
    :class:`FrameError` -- the stream cannot be resynchronized.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise FrameError(
                f"EOF after {n - remaining}/{n} bytes of a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message from a blocking stream; ``None`` on clean EOF."""
    header = _read_exact(stream, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    _check_length(length)
    payload = _read_exact(stream, length)
    if payload is None:
        raise FrameError("EOF between a frame's header and payload")
    return decode_payload(payload)


def write_frame(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one message to a blocking stream and flush it."""
    stream.write(encode_frame(message))
    stream.flush()


# ----------------------------------------------------------------------
# asyncio (coordinator side)
# ----------------------------------------------------------------------
async def read_frame_async(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF (worker exited between frames);
    raises :class:`FrameError` on a torn frame (worker killed
    mid-write).
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"EOF inside a frame header ({len(exc.partial)} bytes)"
        ) from exc
    (length,) = _LEN.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"EOF after {len(exc.partial)}/{length} payload bytes"
        ) from exc
    return decode_payload(payload)


async def write_frame_async(
    writer: asyncio.StreamWriter, message: dict[str, Any]
) -> None:
    """Write one message to an :class:`asyncio.StreamWriter` and drain."""
    writer.write(encode_frame(message))
    await writer.drain()
