"""Trace-driven load generation for the serving layer.

A trace is a sequence of :class:`TraceEvent` arrivals on the simulated
clock.  :func:`poisson_trace` draws exponential inter-arrival gaps (the
standard open-loop traffic model); :func:`burst_trace` puts every request
at t=0 (closed-loop stress).  :func:`replay` submits a trace against a
running :class:`~repro.serve.server.InferenceServer`, carrying each
event's simulated arrival time so queue-wait accounting stays faithful
even when the event loop runs unscaled.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .policies import AdmissionRejected
from .server import InferenceServer, RequestResult

__all__ = [
    "TraceEvent",
    "RejectedRequest",
    "poisson_trace",
    "burst_trace",
    "skewed_trace",
    "replay",
]


@dataclass(frozen=True)
class RejectedRequest:
    """One trace event the admission policy shed, with the rejection."""

    event: "TraceEvent"
    error: AdmissionRejected


@dataclass(frozen=True)
class TraceEvent:
    """One request arrival: simulated time plus the model it targets."""

    t_us: float
    model: str


def poisson_trace(
    rate_rps: float,
    num_requests: int,
    models: Sequence[str],
    *,
    weights: Sequence[float] | None = None,
    seed: int = 0,
) -> tuple[TraceEvent, ...]:
    """Open-loop Poisson arrivals at ``rate_rps`` across ``models``."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if not models:
        raise ValueError("models must be non-empty")
    rng = np.random.default_rng(seed)
    gaps_us = rng.exponential(1e6 / rate_rps, size=num_requests)
    times = np.cumsum(gaps_us)
    p = None
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if len(w) != len(models) or (w < 0).any() or w.sum() == 0:
            raise ValueError("weights must be non-negative, one per model")
        p = w / w.sum()
    picks = rng.choice(len(models), size=num_requests, p=p)
    return tuple(
        TraceEvent(t_us=float(t), model=models[i])
        for t, i in zip(times, picks)
    )


def skewed_trace(
    rate_rps: float,
    num_requests: int,
    hot_models: Sequence[str],
    cold_models: Sequence[str],
    *,
    hot_fraction: float = 0.8,
    seed: int = 0,
) -> tuple[TraceEvent, ...]:
    """Poisson arrivals with a scripted hot/cold popularity skew.

    ``hot_fraction`` of the traffic lands on ``hot_models`` (split
    evenly among them); the remainder spreads evenly over
    ``cold_models``.  This is the workload shape the placement layer's
    replication policy exists for -- a deterministic, seeded version of
    the classic Zipf head -- and the placement tests assert replication
    targets exactly the hot set on it.
    """
    if not hot_models or not cold_models:
        raise ValueError("skewed_trace needs hot and cold model sets")
    overlap = set(hot_models) & set(cold_models)
    if overlap:
        raise ValueError(f"models cannot be both hot and cold: {overlap}")
    if not 0 < hot_fraction < 1:
        raise ValueError(
            f"hot_fraction must be in (0, 1), got {hot_fraction}"
        )
    models = list(hot_models) + list(cold_models)
    weights = [hot_fraction / len(hot_models)] * len(hot_models) + [
        (1.0 - hot_fraction) / len(cold_models)
    ] * len(cold_models)
    return poisson_trace(
        rate_rps, num_requests, models, weights=weights, seed=seed
    )


def burst_trace(
    num_requests: int, models: Sequence[str]
) -> tuple[TraceEvent, ...]:
    """All requests arriving at t=0, round-robined across models."""
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if not models:
        raise ValueError("models must be non-empty")
    return tuple(
        TraceEvent(t_us=0.0, model=models[i % len(models)])
        for i in range(num_requests)
    )


async def replay(
    server: InferenceServer, trace: Sequence[TraceEvent], *,
    include_rejections: bool = False,
) -> (
    list[RequestResult]
    | tuple[list[RequestResult], list[RejectedRequest]]
):
    """Submit every trace event and gather the results (arrival order).

    When the server runs scaled (``time_scale > 0``) the replay also
    paces submissions in real time; unscaled, all submissions land as
    fast as the loop schedules them and the simulated arrival stamps do
    the pacing.

    Requests shed by the server's admission policy are dropped from the
    results (an open-loop client that got a 503); pass
    ``include_rejections=True`` to also get the shed events back as
    ``(results, rejections)``.  Any other submission failure propagates.
    """
    events = sorted(trace, key=lambda e: e.t_us)

    async def _submit(event: TraceEvent) -> RequestResult:
        if server.time_scale > 0 and event.t_us > 0:
            await asyncio.sleep(event.t_us * server.time_scale)
        return await server.submit(event.model, arrival_us=event.t_us)

    outcomes = await asyncio.gather(
        *(_submit(e) for e in events), return_exceptions=True
    )
    results: list[RequestResult] = []
    rejections: list[RejectedRequest] = []
    for event, outcome in zip(events, outcomes):
        if isinstance(outcome, AdmissionRejected):
            rejections.append(RejectedRequest(event=event, error=outcome))
        elif isinstance(outcome, BaseException):
            raise outcome
        else:
            results.append(outcome)
    if include_rejections:
        return results, rejections
    return results
