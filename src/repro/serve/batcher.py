"""Cost-model-driven dynamic batching.

The batcher decides, each time a worker frees up, how many queued
requests to coalesce into one engine launch.  The trade-off it navigates
is the one the latency model (:mod:`repro.perf.model`) encodes: bigger
batches amortize kernel-launch overhead and fill more SMs (throughput
rises), but every request in the batch pays the whole batch's latency
(SLO pressure).  The decision rule:

1. sweep the candidate batch sizes with :func:`repro.perf.batch_size_sweep`
   (plan-cache-backed, so the sweep is cheap after warmup);
2. among candidates whose modeled latency meets the SLO, pick the one
   with the highest *effective* throughput ``min(queue_depth, batch) /
   latency`` -- requests actually dispatched per unit time, so a
   half-empty 128-wide batch never beats a full 64-wide one;
3. if no candidate meets the SLO, fall back to the lowest-latency
   candidate -- the server is overloaded and the SLO is unattainable, so
   minimize the damage.

Candidates are capped at the queue depth rounded up to the next candidate
size, so a near-empty queue never waits to fill a 128-wide batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..perf.model import BatchSweepPoint, batch_size_sweep

__all__ = ["DEFAULT_CANDIDATE_BATCHES", "BatchDecision", "DynamicBatcher"]

#: Powers of two up to the throughput-study batch of the paper (Table 2).
DEFAULT_CANDIDATE_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class BatchDecision:
    """One scheduling decision plus the sweep that justified it."""

    batch_size: int
    expected_latency_us: float
    expected_throughput_rps: float
    meets_slo: bool
    sweep: tuple[BatchSweepPoint, ...]

    @property
    def expected_latency_ms(self) -> float:
        return self.expected_latency_us / 1000.0


class DynamicBatcher:
    """Picks batch sizes maximizing modeled throughput under an SLO."""

    def __init__(
        self,
        slo_ms: float,
        candidate_batches: Sequence[int] = DEFAULT_CANDIDATE_BATCHES,
    ) -> None:
        if slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        cands = sorted(set(int(b) for b in candidate_batches))
        if not cands or cands[0] < 1:
            raise ValueError(
                f"candidate_batches must be >= 1, got {candidate_batches}"
            )
        self.slo_ms = slo_ms
        self.candidate_batches = tuple(cands)

    def eligible_batches(
        self, queue_depth: int, replicas: int = 1
    ) -> tuple[int, ...]:
        """Candidates no larger than this worker's backlog share.

        ``replicas`` is how many workers the placement layer currently
        points at this model's queue; each should claim roughly
        ``depth / replicas`` so co-replicas are never starved of work
        (and none over-compiles a batch sized for the whole backlog).
        The share is rounded up to the next candidate size, so a
        near-empty queue never waits to fill a wide batch.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        depth = max(1, -(-max(1, queue_depth) // replicas))
        eligible = [b for b in self.candidate_batches if b <= depth]
        larger = [b for b in self.candidate_batches if b > depth]
        if larger:
            eligible.append(larger[0])
        return tuple(eligible)

    def choose(
        self,
        queue_depth: int,
        price_us: Callable[[int], float],
        *,
        slo_ms: float | None = None,
        replicas: int = 1,
    ) -> BatchDecision:
        """Decide the batch size for the current queue.

        ``price_us(batch)`` returns modeled whole-model latency in
        microseconds (see :func:`repro.perf.batch_size_sweep`).
        ``slo_ms`` overrides the batcher-wide SLO for this decision --
        the scheduler passes each model's own objective
        (``ServedModel.slo_ms``) so mixed-SLO deployments batch each
        model against the deadline its clients actually hold.
        ``replicas`` makes the decision placement-aware: a worker
        sharing the queue with co-replicas sizes its batch for its share
        of the backlog, not the whole of it.
        """
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        depth = max(1, -(-max(1, queue_depth) // replicas))
        sweep = batch_size_sweep(price_us, self.eligible_batches(depth))
        slo_us = (self.slo_ms if slo_ms is None else slo_ms) * 1000.0

        def effective_rps(p: BatchSweepPoint) -> float:
            return min(depth, p.batch) / (p.latency_us * 1e-6)

        feasible = [p for p in sweep if p.latency_us <= slo_us]
        if feasible:
            # Tie-break toward the smaller batch: same dispatch rate with
            # less over-compiled capacity.
            best = max(feasible, key=lambda p: (effective_rps(p), -p.batch))
            meets = True
        else:
            best = min(sweep, key=lambda p: p.latency_us)
            meets = False
        return BatchDecision(
            batch_size=best.batch,
            expected_latency_us=best.latency_us,
            expected_throughput_rps=effective_rps(best),
            meets_slo=meets,
            sweep=sweep,
        )
