"""Async batched inference serving on top of the analytical cost stack.

This package turns the per-model pricing of
:class:`~repro.nn.engine.InferenceEngine` into a throughput-oriented
request-serving pipeline -- the road from the paper's offline wXaY
latency tables (Tables 2-4) toward serving live traffic:

``plan_cache``
    LRU memo of compiled engine plans (fused groups + dataflow +
    autotuned tiles + kernel cost chains) keyed by (model, backend,
    precision, device, batch, input shape), so repeat requests never
    re-plan.  Cold keys compile off-loop with single-flight dedup
    (``ensure_async``), and a ``PlanCacheStore`` persists plans as
    JSON lines so restarted servers start warm.
``batcher``
    Dynamic batching: sweeps candidate batch sizes through the latency
    model and picks the one maximizing modeled throughput under an SLO.
``scheduler``
    Pluggable queue disciplines deciding which model a freed worker
    serves next: FIFO (default), SLO-aware earliest-deadline-first, and
    per-model weighted fair queueing.
``policies``
    Load management: admission control (shed/defer past a queue-depth
    cap) and precision autoswitching (degrade ``wXaY`` under backlog,
    trading modeled Table-1 accuracy for latency).
``placement``
    Which models live on which workers: metrics-driven replication of
    hot models (windowed arrival rates vs modeled per-replica service
    rates, rebalanced atomically at epoch boundaries) and
    pipeline-parallel sharding of large models into cost-balanced
    stages on distinct workers.
``server``
    Asyncio front end (``submit()`` / ``serve_forever()``) dispatching
    coalesced batches to worker loops across backends and devices on a
    simulated clock.
``cluster`` / ``ipc``
    Fault-tolerant multi-process scale-out: a coordinator routing over
    N workers -- deterministic simulations driven by a ``FaultPlan``,
    or real subprocesses speaking length-prefixed JSON frames
    (``ipc``) over pipes -- with heartbeat crash detection, bounded
    retry with failover, exactly-once completion, worker restarts and
    graceful drain, all sharing one persistent ``PlanCacheStore``.
``http``
    Network ingress (subpackage :mod:`repro.serve.http`, imported on
    demand): a stdlib HTTP/1.1 + WebSocket gateway over ``submit()``
    with streaming result delivery, per-client bounded send queues
    (backpressure) and graceful drain behind the shared ``draining``
    state.
``metrics``
    Per-worker p50/p95 simulated latency, queue depth, batch occupancy,
    admission/autoswitch counters, and plan-/autotune-cache hit rates.
``trace``
    Poisson / burst load generators and a trace replayer.
"""

from .batcher import DEFAULT_CANDIDATE_BATCHES, BatchDecision, DynamicBatcher
from .cluster import (
    ClusterCoordinator,
    ClusterError,
    ClusterPolicy,
    ClusterResult,
    FaultEvent,
    FaultPlan,
    ModelSpec,
    WorkerCrashed,
    result_payload,
)
from .ipc import (
    IPC_SCHEMA_VERSION,
    FrameError,
    canonical_json,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)
from .metrics import (
    METRICS_SCHEMA_VERSION,
    ServerMetrics,
    StageMetrics,
    WorkerMetrics,
    percentile,
)
from .placement import (
    ModelPlacement,
    Placement,
    PlacementController,
    PlacementDecision,
    PlacementPolicy,
    StagePlan,
    partition_units,
    pipeline_stages,
    run_pipeline,
)
from .plan_cache import (
    STORE_SCHEMA_VERSION,
    PlanCache,
    PlanCacheStats,
    PlanCacheStore,
    PlanKey,
    backend_key,
    calibration_key,
)
from .policies import (
    AdmissionPolicy,
    AdmissionRejected,
    PrecisionAutoswitcher,
    accuracy_delta,
    modeled_accuracy,
)
from .scheduler import (
    DISCIPLINES,
    EDFDiscipline,
    FIFODiscipline,
    QueueDiscipline,
    QueueSnapshot,
    WFQDiscipline,
    make_discipline,
)
from .server import (
    InferenceServer,
    RequestResult,
    ServedModel,
    ServerDraining,
)
from .trace import (
    RejectedRequest,
    TraceEvent,
    burst_trace,
    poisson_trace,
    replay,
    skewed_trace,
)

__all__ = [
    "PlanKey",
    "PlanCache",
    "PlanCacheStats",
    "PlanCacheStore",
    "STORE_SCHEMA_VERSION",
    "backend_key",
    "calibration_key",
    "BatchDecision",
    "DynamicBatcher",
    "DEFAULT_CANDIDATE_BATCHES",
    "ServerMetrics",
    "StageMetrics",
    "WorkerMetrics",
    "METRICS_SCHEMA_VERSION",
    "percentile",
    "PlacementPolicy",
    "PlacementController",
    "PlacementDecision",
    "Placement",
    "ModelPlacement",
    "StagePlan",
    "partition_units",
    "pipeline_stages",
    "run_pipeline",
    "QueueDiscipline",
    "QueueSnapshot",
    "FIFODiscipline",
    "EDFDiscipline",
    "WFQDiscipline",
    "DISCIPLINES",
    "make_discipline",
    "AdmissionPolicy",
    "AdmissionRejected",
    "PrecisionAutoswitcher",
    "modeled_accuracy",
    "accuracy_delta",
    "InferenceServer",
    "RequestResult",
    "ServedModel",
    "ServerDraining",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterPolicy",
    "ClusterResult",
    "FaultEvent",
    "FaultPlan",
    "ModelSpec",
    "WorkerCrashed",
    "result_payload",
    "IPC_SCHEMA_VERSION",
    "FrameError",
    "canonical_json",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "TraceEvent",
    "RejectedRequest",
    "poisson_trace",
    "burst_trace",
    "skewed_trace",
    "replay",
]
