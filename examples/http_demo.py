"""HTTP gateway demo: the serving stack behind real sockets.

Boots a small :class:`repro.serve.InferenceServer` (alexnet on one
APNN-w1a2 worker), fronts it with :class:`repro.serve.http.HttpGateway`
on a loopback port, and walks the whole surface with stdlib clients:

* ``GET /healthz`` and ``GET /v1/metrics`` -- liveness + the metrics
  snapshot as canonical JSON;
* ``POST /v1/infer`` -- single-shot inference with the result digest,
  pricing and deadline metadata in the response;
* ``WS /v1/stream`` -- a WebSocket client (frames masked with a seeded
  RNG, like everything else in this repo) streaming ten submissions and
  reading results as they complete;
* graceful drain -- in-flight work finishes, new connections get 503.

Run:  python examples/http_demo.py
"""

import asyncio
import json
import random
import time

from repro.core import PrecisionPair
from repro.nn import APNNBackend, alexnet
from repro.serve import InferenceServer, ServedModel
from repro.serve.http import HttpGateway
from repro.serve.http.protocol import (
    OP_CLOSE,
    OP_TEXT,
    WSDecoder,
    WSMessageAssembler,
    encode_ws_frame,
    encode_ws_message,
)
from repro.tensorcore import RTX3090

MODEL = "alexnet-64"
HANDSHAKE_KEY = "aHR0cF9kZW1vLmV4YW1wbGU="
STREAMED = 10


async def http_get(port, target):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: demo\r\n"
        f"Connection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


async def http_post(port, target, obj):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(obj).encode()
    writer.write(
        (
            f"POST {target} HTTP/1.1\r\nHost: demo\r\n"
            f"Connection: close\r\nContent-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(body) if body else {}


async def stream_ws(port):
    """Submit STREAMED requests over one WebSocket, yield the results."""
    rng = random.Random(2021)  # seeded masks: replayable, like the repo
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        (
            f"GET /v1/stream HTTP/1.1\r\nHost: demo\r\n"
            f"Connection: Upgrade\r\nUpgrade: websocket\r\n"
            f"Sec-WebSocket-Key: {HANDSHAKE_KEY}\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    await reader.readuntil(b"\r\n\r\n")  # 101 Switching Protocols
    for i in range(STREAMED):
        writer.write(encode_ws_message(
            json.dumps({"model": MODEL, "tag": f"stream-{i}"}),
            mask=rng.randbytes(4),
        ))
    await writer.drain()
    decoder, assembler = WSDecoder(forbid_mask=True), WSMessageAssembler()
    results = []
    while len(results) < STREAMED:
        decoder.feed(await reader.read(65536))
        for frame in decoder.frames():
            message = assembler.push(frame)
            if message and message[0] == OP_TEXT:
                results.append(json.loads(message[1]))
    writer.write(encode_ws_frame(OP_CLOSE, b"", mask=rng.randbytes(4)))
    await writer.drain()
    writer.close()
    return results


async def main():
    server = InferenceServer(
        {MODEL: ServedModel(
            alexnet(num_classes=10, input_size=64), (3, 64, 64), slo_ms=5.0
        )},
        [(APNNBackend(PrecisionPair.parse("w1a2")), RTX3090)],
        slo_ms=5.0,
    )
    await server.start()
    gateway = HttpGateway(server)
    await gateway.start()
    print(f"gateway listening on 127.0.0.1:{gateway.port}\n")

    status, body = await http_get(gateway.port, "/healthz")
    print(f"GET /healthz            -> {status} {body.decode()}")

    t0 = time.perf_counter()
    status, result = await http_post(
        gateway.port, "/v1/infer", {"model": MODEL, "tag": "demo-0"}
    )
    ms = (time.perf_counter() - t0) * 1e3
    print(f"POST /v1/infer          -> {status} in {ms:.1f} ms wall")
    print(f"  digest  : {result['digest'][:16]}...")
    print(f"  pricing : {result['pricing']['unit_us']:.1f} us/req "
          f"({result['pricing']['pair']})")
    print(f"  deadline met: {result['deadline']['met']}")

    results = await stream_ws(gateway.port)
    digests = {r["digest"] for r in results}
    print(f"\nWS /v1/stream           -> {len(results)} results streamed")
    print(f"  distinct digests      : {len(digests)} "
          f"(one per tag: digest covers the client tag)")
    finishes = [r["timing"]["finish_us"] for r in results]
    print(f"  completion-ordered    : {finishes == sorted(finishes)}")

    status, body = await http_get(gateway.port, "/v1/metrics")
    snapshot = json.loads(body)
    print(f"\nGET /v1/metrics         -> {status}")
    print(f"  gateway_connections   : {snapshot['gateway_connections']}")
    print(f"  gateway_http_requests : {snapshot['gateway_http_requests']}")
    print(f"  ws_messages_streamed  : {snapshot['ws_messages_streamed']}")

    gateway.drain()
    status, _ = await http_get(gateway.port, "/healthz")
    print(f"\nafter drain(): new connection -> {status} "
          f"(in-flight work still completes)")
    await gateway.stop()
    await server.stop()
    print("graceful shutdown: OK")


if __name__ == "__main__":
    asyncio.run(main())
