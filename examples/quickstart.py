"""Quickstart: arbitrary-precision GEMM on the simulated Tensor Core.

Runs one APMM at w1a2 (1-bit bipolar weights x 2-bit unsigned
activations), verifies the bit-serial emulation against the exact integer
product, and prints the modeled RTX 3090 latency next to the CUTLASS
int4 baseline -- the paper's core comparison, in ~40 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import cutlass_gemm
from repro.core import PrecisionPair, reference_matmul
from repro.kernels import apmm
from repro.perf import LatencyModel
from repro.tensorcore import RTX3090


def main() -> None:
    pair = PrecisionPair.parse("w1a2")
    rng = np.random.default_rng(0)

    # weights: 1024 output neurons, K=1024; activations: batch of 64
    weights = pair.weight.random_digits(rng, (1024, 1024))
    activations = pair.activation.random_digits(rng, (64, 1024))

    result = apmm(weights, activations, pair.weight, pair.activation,
                  strategy="bitserial")
    exact = reference_matmul(weights, activations, pair.weight, pair.activation)
    assert np.array_equal(result.output, exact), "emulation must be exact"
    print(f"APMM-{pair} output {result.output.shape}, bit-exact: OK")
    print(f"autotuned tile: {result.config} "
          f"(TLP={result.tune.tlp:.0f}, CI={result.tune.ci:.1f})")

    model = LatencyModel(RTX3090)
    ap_us = model.latency_us(result.cost)

    # the same GEMM through the int4 library baseline
    w4 = rng.integers(-8, 8, size=(1024, 1024))
    x4 = rng.integers(-8, 8, size=(64, 1024))
    base = cutlass_gemm(x4, w4, "int4")
    int4_us = model.latency_us(base.cost)

    print(f"\nmodeled RTX 3090 latency:")
    print(f"  APMM-w1a2          {ap_us:7.2f} us   (paper Table 4:  6.67 us)")
    print(f"  cutlass-gemm-int4  {int4_us:7.2f} us   (paper Table 4: 15.61 us)")
    print(f"  speedup            {int4_us / ap_us:7.2f} x")


if __name__ == "__main__":
    main()
