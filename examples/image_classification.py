"""End-to-end APNN inference study on the paper's three networks.

Builds AlexNet, VGG-Variant and ResNet-18 (224x224 ImageNet geometry),
prices them on every backend of the paper's Table 2, prints the latency /
throughput comparison, and shows the per-layer breakdown of Figure 9 for
AlexNet -- including the first-layer bottleneck the paper highlights.

Run:  python examples/image_classification.py [--small]
"""

import argparse

import numpy as np

from repro.core import PrecisionPair
from repro.experiments.report import format_table
from repro.nn import (
    APNNBackend,
    BNNBackend,
    InferenceEngine,
    LibraryBackend,
    alexnet,
    resnet18,
    vgg_variant,
)


def main(small: bool = False) -> None:
    size = 32 if small else 224
    builders = {
        "AlexNet": lambda: alexnet(input_size=max(size, 63)),
        "VGG-Variant": lambda: vgg_variant(input_size=max(size, 32)),
        "ResNet-18": lambda: resnet18(input_size=max(size, 32)),
    }
    backends = [
        LibraryBackend("fp32"),
        LibraryBackend("fp16"),
        LibraryBackend("int8"),
        BNNBackend(),
        APNNBackend(PrecisionPair.parse("w1a2")),
    ]

    input_shape = (3, max(size, 63), max(size, 63))
    rows = []
    for model_name, build in builders.items():
        net = build()
        shape = (3, size, size) if model_name != "AlexNet" else input_shape
        for backend in backends:
            engine = InferenceEngine(net, backend)
            lat = engine.estimate(8, input_shape=shape).latency_ms
            fps = engine.estimate(128, input_shape=shape).throughput_fps
            rows.append([model_name, backend.name, lat, f"{fps:,.0f}"])
    print(format_table(
        ["model", "scheme", "batch-8 latency (ms)", "batch-128 fps"], rows
    ))

    # Figure 9 flavour: where does APNN-w1a2 AlexNet time go?
    engine = InferenceEngine(
        builders["AlexNet"](), APNNBackend(PrecisionPair.parse("w1a2"))
    )
    report = engine.estimate(8, input_shape=input_shape)
    print("\nAlexNet APNN-w1a2 per-layer breakdown (batch 8):")
    for name, frac in report.layer_fractions():
        bar = "#" * int(round(frac * 50))
        print(f"  {name:<14} {100 * frac:5.1f}% {bar}")
    print("\nThe 3-channel input layer cannot use the channel-major packed")
    print("layout (paper section 4.2a), which is why conv1 dominates.")

    # functional sanity: the float reference forward still runs
    x = np.random.default_rng(0).normal(
        size=(1,) + input_shape
    ).astype(np.float32)
    logits = engine.forward(x)
    print(f"\nfloat reference forward: logits shape {logits.shape} OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--small", action="store_true",
                        help="use small inputs for a fast demo")
    main(parser.parse_args().small)
