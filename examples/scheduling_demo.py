"""Scheduling demo: SLO-aware disciplines and load policies under overload.

Replays the same seeded Poisson overload trace -- two models sharing one
APNN-w2a8 worker: an AlexNet that promises a tight 0.4 ms SLO and a
ResNet-18 with a relaxed 50 ms one -- under four scheduler setups:

* **fifo**: arrival order (the default); the tight model's deadlines die
  behind the loose model's backlog;
* **edf**: earliest-deadline-first spends the loose model's slack to
  save the tight deadlines;
* **fifo + shed**: admission control bounds the queue at a hard cap and
  rejects the overflow up front;
* **fifo + autoswitch**: under backlog the worker serves w2a8 traffic at
  w1a2 -- the paper's Table 1 accuracy/latency dial turned at runtime --
  and reports the modeled accuracy it traded away.

Run:  python examples/scheduling_demo.py
"""

import asyncio

from repro.core import PrecisionPair
from repro.nn import APNNBackend, alexnet, resnet18
from repro.serve import (
    AdmissionPolicy,
    InferenceServer,
    PlanCache,
    PrecisionAutoswitcher,
    ServedModel,
    percentile,
    poisson_trace,
    replay,
)
from repro.tensorcore import RTX3090

NUM_REQUESTS = 160
RATE_RPS = 300_000.0  # well past the worker's service rate: overload
TIGHT_SLO_MS = 0.4
LOOSE_SLO_MS = 50.0
CAP = 32
SWITCH_DEPTH = 16


def build_models():
    return {
        "alexnet-tight": ServedModel(
            alexnet(num_classes=10, input_size=64), (3, 64, 64),
            slo_ms=TIGHT_SLO_MS,
        ),
        "resnet-loose": ServedModel(
            resnet18(num_classes=10, input_size=32), (3, 32, 32),
            slo_ms=LOOSE_SLO_MS,
        ),
    }


async def serve_trace(trace, plan_cache, **server_kw):
    server = InferenceServer(
        build_models(),
        [(APNNBackend(PrecisionPair.parse("w2a8")), RTX3090)],
        slo_ms=5.0,
        candidate_batches=(1, 2, 4, 8, 16),
        plan_cache=plan_cache,
        **server_kw,
    )
    await server.start()
    results, rejections = await replay(
        server, trace, include_rejections=True
    )
    await server.stop()
    return server, results, rejections


def main() -> None:
    trace = poisson_trace(
        RATE_RPS, NUM_REQUESTS, sorted(build_models()), seed=11
    )
    plan_cache = PlanCache()
    setups = {
        "fifo": {},
        "edf": {"discipline": "edf"},
        "fifo+shed": {
            "admission": AdmissionPolicy(max_queue_depth=CAP, mode="shed")
        },
        "fifo+autoswitch": {
            "autoswitch": PrecisionAutoswitcher.from_spec(
                {SWITCH_DEPTH: "w1a2"}
            )
        },
    }

    summary = {}
    for label, kw in setups.items():
        server, results, rejections = asyncio.run(
            serve_trace(trace, plan_cache, **kw)
        )
        m = server.metrics
        tight = [r for r in results if r.model == "alexnet-tight"]
        summary[label] = {
            "misses": m.total_deadline_misses,
            "p95_ms": percentile([r.latency_us for r in results], 95) / 1e3,
            "tight_p95_ms": percentile(
                [r.latency_us for r in tight], 95
            ) / 1e3,
            "rejected": m.total_rejected,
            "max_depth": m.max_queue_depth_seen,
            "switch_rate": m.switch_rate,
        }
        print(f"\n== {label}: {len(results)} served, "
              f"{len(rejections)} shed ==")
        print(m.report(plan_cache))

    print("\n-- what the scheduler bought --")
    fifo, edf = summary["fifo"], summary["edf"]
    print(f"EDF deadline misses {edf['misses']} vs FIFO {fifo['misses']} "
          f"(tight p95 {edf['tight_p95_ms']:.3f} vs "
          f"{fifo['tight_p95_ms']:.3f} ms)")
    assert edf["misses"] < fifo["misses"], summary
    print("EDF lowers SLO violations vs FIFO: OK")

    shed = summary["fifo+shed"]
    assert shed["max_depth"] <= CAP and shed["rejected"] > 0, summary
    print(f"admission bounds queue at {shed['max_depth']} <= cap {CAP} "
          f"({shed['rejected']} rejected): OK")

    auto = summary["fifo+autoswitch"]
    assert auto["switch_rate"] > 0, summary
    assert auto["p95_ms"] < fifo["p95_ms"], summary
    print(f"autoswitch rate {auto['switch_rate']:.2f} cuts p95 to "
          f"{auto['p95_ms']:.3f} ms vs {fifo['p95_ms']:.3f} ms: OK")


if __name__ == "__main__":
    main()
