"""Inside the tile autotuner (paper section 4.3).

Shows how TLP (eq. 3) and compute intensity (eq. 4) trade off across the
candidate tile grid for two very different problems -- a small
fully-connected layer and a large square GEMM -- and how the paper's
priority-queue heuristic resolves the tension.  Also demonstrates that
tuning is device-aware by comparing RTX 3090 and A100 choices.

Run:  python examples/autotune_explorer.py
"""

from repro.experiments.report import format_table
from repro.kernels import TLP_THRESHOLD, autotune
from repro.perf import LatencyModel, gemm_cost
from repro.tensorcore import A100, RTX3090


def explore(m: int, n: int, p: int, q: int, device) -> None:
    result = autotune(m, n, p, q, device)
    print(f"\nproblem: weights {m} rows x features {n} rows, w{p}a{q} "
          f"on {device.name} (TLP threshold T = {TLP_THRESHOLD:.0f})")
    model = LatencyModel(device)
    rows = []
    for cfg, tlp_score, ci in result.ranking:
        latency = model.latency_us(gemm_cost(m, n, 1024, p, q, cfg))
        chosen = "  <== chosen" if cfg == result.config else ""
        rows.append([str(cfg), f"{tlp_score:.0f}", f"{ci:.1f}",
                     f"{latency:.2f}{chosen}"])
    print(format_table(["tile", "TLP", "CI", "modeled us (K=1024)"], rows))


def main() -> None:
    # Table 4's FC problem: tiny batch, the GPU is starved for blocks
    explore(1024, 64, 1, 2, RTX3090)
    # a large square GEMM: TLP is plentiful, CI decides
    explore(4096, 4096, 1, 1, RTX3090)
    # same FC problem on A100: more SMs shift the trade-off
    explore(1024, 64, 1, 2, A100)

    print("\nSmall problems pick small tiles (parallelism first); large")
    print("problems pick 128x128 (compute intensity first) -- exactly the")
    print("two regimes of the paper's heuristic.")


if __name__ == "__main__":
    main()
