"""The accuracy/performance trade-off across the precision spectrum.

The paper's motivation: arbitrary precision lets applications pick any
point between binary speed and int8 fidelity.  This example sweeps weight
and activation bit-widths on the VGG-Variant, printing modeled throughput
(RTX 3090) next to the emulation workload (p*q one-bit plane products),
and trains the QAT ConvNet at three representative points to show the
accuracy side on the synthetic dataset.

Run:  python examples/mixed_precision_tradeoff.py [--with-training]
"""

import argparse

from repro.core import PrecisionPair
from repro.experiments.report import format_table
from repro.nn import APNNBackend, InferenceEngine, LibraryBackend, vgg_variant


def sweep_performance() -> None:
    net = vgg_variant()
    rows = []
    for name in ("w1a1", "w1a2", "w1a4", "w2a2", "w2a4", "w1a8", "w2a8",
                 "w4a4", "w4a8", "w8a8"):
        pair = PrecisionPair.parse(name)
        engine = InferenceEngine(net, APNNBackend(pair))
        fps = engine.estimate(128).throughput_fps
        lat = engine.estimate(8).latency_ms
        rows.append([name, pair.plane_product, lat, f"{fps:,.0f}"])
    int8 = InferenceEngine(net, LibraryBackend("int8"))
    rows.append(
        ["int8 (library)", "-", int8.estimate(8).latency_ms,
         f"{int8.estimate(128).throughput_fps:,.0f}"]
    )
    print("VGG-Variant on simulated RTX 3090:\n")
    print(format_table(
        ["precision", "bit-planes (p*q)", "batch-8 latency (ms)",
         "batch-128 fps"],
        rows,
    ))
    print("\nMore bit-planes -> more emulated one-bit GEMMs; past ~8-16")
    print("planes the built-in int8 path wins (paper Table 3, Fig. 5b).")


def sweep_accuracy() -> None:
    from repro.train import QATConfig, make_dataset, train_model

    print("\nTraining the QAT ConvNet at three precision points "
          "(synthetic dataset, Table 1 substitute)...")
    ds = make_dataset(num_classes=10, train_per_class=60, test_per_class=30,
                      noise=0.3, detail=0.45, seed=0)
    rows = []
    for preset in ("binary", "w1a2", "float"):
        result = train_model(ds, QATConfig.preset(preset, epochs=8, seed=1))
        rows.append([preset, f"{result.test_accuracy:.1%}"])
    print(format_table(["precision", "test accuracy"], rows))


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--with-training", action="store_true",
                        help="also run the QAT accuracy sweep (~1 min)")
    args = parser.parse_args()
    sweep_performance()
    if args.with_training:
        sweep_accuracy()
