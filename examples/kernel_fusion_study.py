"""Semantic-aware kernel fusion, functionally and in the cost model.

Reproduces the Figure 10 experiment end to end: an APConv-w1a2 followed by
2x2 average pooling and 2-bit re-quantization, executed (a) functionally,
verifying the fused epilogue math equals the layer-by-layer reference, and
(b) through the cost model, comparing one fused launch against the
three-kernel chain with DRAM round trips.

Run:  python examples/kernel_fusion_study.py
"""

import numpy as np

from repro.core import AffineQuantizer, PrecisionPair
from repro.experiments.report import format_table
from repro.kernels import (
    AvgPoolOp,
    QuantizeOp,
    apconv,
    apply_epilogue,
    autotune,
    fused_cost,
    unfused_costs,
)
from repro.perf import LatencyModel, conv_cost, conv_gemm_dims
from repro.tensorcore import RTX3090


def functional_check() -> None:
    pair = PrecisionPair.parse("w1a2")
    rng = np.random.default_rng(0)
    w = pair.weight.random_digits(rng, (32, 16, 3, 3))
    x = pair.activation.random_digits(rng, (1, 16, 8, 8))
    conv = apconv(w, x, pair.weight, pair.activation, padding=1)

    quant = AffineQuantizer(bits=2, scale=40.0, zero_point=-60.0)
    ops = [AvgPoolOp(2), QuantizeOp(quant)]
    fused_out = apply_epilogue(conv.output.astype(np.float64), ops)

    pooled = conv.output.reshape(1, 32, 4, 2, 4, 2).mean(axis=(3, 5))
    reference = quant.quantize(pooled)
    assert np.array_equal(fused_out, reference)
    print("fused epilogue == layer-by-layer reference: OK "
          f"(output {fused_out.shape}, 2-bit digits)")


def cost_comparison() -> None:
    model = LatencyModel(RTX3090)
    rows = []
    quant = AffineQuantizer(bits=2, scale=1.0)
    for c in range(128, 1025, 128):
        m, ngemm, _ = conv_gemm_dims(1, c, c, 16, 16, 3, 1, 1)
        cfg = autotune(m, ngemm, 1, 2, RTX3090).config
        base = conv_cost(1, c, c, 16, 16, 3, 1, 2, cfg, stride=1, padding=1)
        ops = [AvgPoolOp(2), QuantizeOp(quant)]
        elements = c * 16 * 16
        fused = model.latency_us(fused_cost(base, ops, elements))
        chain = model.chain_latency_us(unfused_costs(base, ops, elements))
        rows.append([c, f"{chain:.1f}", f"{fused:.1f}", f"{chain / fused:.2f}x"])
    print("\nFigure 10 geometry (conv + pool + quantize), RTX 3090:")
    print(format_table(
        ["channels", "unfused us", "fused us", "speedup"], rows
    ))
    print("\npaper reports a 1.77x average reduction; the win comes from")
    print("skipping two kernel launches and the intermediate DRAM round trip.")


if __name__ == "__main__":
    functional_check()
    cost_comparison()
