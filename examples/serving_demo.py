"""Serving demo: async batched inference across backends under an SLO.

Spins up the :mod:`repro.serve` stack twice -- once with a tight latency
SLO, once with a loose one -- over the same 200-request burst (every
request arriving at t=0: an overload snapshot) on three workers
(APNN-w1a2 and BNN on RTX 3090, CUTLASS int8 on A100), and shows the
three serving mechanisms at work:

* the **dynamic batcher** picks small batches under the tight SLO and
  large launch-amortizing batches under the loose one;
* the **plan cache** (shared across both runs) stops replanning as soon
  as the (model, backend, batch) working set is warm;
* the **metrics layer** reports simulated p50/p95, batch occupancy and
  cache hit rates per worker;
* **plan persistence + prewarm** replay the same load over a
  `PlanCacheStore`-backed cache and then "restart" the server: the
  fresh process loads every plan from disk and compiles nothing.

Run:  python examples/serving_demo.py
"""

import asyncio
import tempfile

from repro.core import PrecisionPair
from repro.nn import APNNBackend, BNNBackend, LibraryBackend, alexnet, resnet18
from repro.serve import (
    InferenceServer,
    PlanCache,
    PlanCacheStore,
    ServedModel,
    burst_trace,
    replay,
)
from repro.tensorcore import A100, RTX3090

NUM_REQUESTS = 200
#: Tight enough that large batches bust the objective on every backend
#: (alexnet-64 on APNN-w1a2 models at ~0.07 ms for batch 32, ~0.10 ms at
#: 64); loose enough that the batcher coalesces whole queues.
TIGHT_SLO_MS = 0.08
LOOSE_SLO_MS = 5.0


def build_models():
    return {
        "alexnet-64": ServedModel(
            alexnet(num_classes=10, input_size=64), (3, 64, 64)
        ),
        "resnet18-32": ServedModel(
            resnet18(num_classes=10, input_size=32), (3, 32, 32)
        ),
    }


def build_workers():
    return [
        (APNNBackend(PrecisionPair.parse("w1a2")), RTX3090),
        (BNNBackend(), RTX3090),
        (LibraryBackend("int8"), A100),
    ]


async def serve_trace(
    slo_ms: float, plan_cache: PlanCache, *, prewarm: bool = False
):
    """Serve the demo trace at one SLO; return the server and results."""
    models = build_models()
    server = InferenceServer(
        models,
        build_workers(),
        slo_ms=slo_ms,
        plan_cache=plan_cache,
    )
    trace = burst_trace(NUM_REQUESTS, sorted(models))
    await server.start(prewarm=prewarm)
    results = await replay(server, trace)
    await server.stop()
    return server, results


def main() -> None:
    plan_cache = PlanCache()
    histograms = {}
    for label, slo_ms in (("tight", TIGHT_SLO_MS), ("loose", LOOSE_SLO_MS)):
        server, results = asyncio.run(serve_trace(slo_ms, plan_cache))
        assert len(results) == NUM_REQUESTS
        assert len(server.metrics.workers) >= 2, "expected >= 2 busy backends"
        histograms[label] = server.metrics.batch_size_histogram()
        print(f"\n== {NUM_REQUESTS} concurrent requests, SLO {slo_ms} ms ==")
        print(server.metrics.report(plan_cache))
        p50 = sorted(r.latency_us for r in results)[len(results) // 2]
        print(f"end-to-end p50  : {p50 / 1e3:.3f} ms "
              f"(sim duration {server.sim_duration_us / 1e3:.3f} ms)")

    tight_max = max(histograms["tight"])
    loose_max = max(histograms["loose"])
    print(f"\nbatch sizes under tight SLO ({TIGHT_SLO_MS} ms): "
          f"{histograms['tight']}")
    print(f"batch sizes under loose SLO ({LOOSE_SLO_MS} ms): "
          f"{histograms['loose']}")
    assert loose_max > tight_max, (histograms, "loose SLO should batch bigger")
    print("batch sizes vary with SLO: OK "
          f"(max {tight_max} tight vs {loose_max} loose)")

    hit_rate = plan_cache.stats().hit_rate
    assert hit_rate > 0.9, plan_cache.stats()
    print(f"plan-cache hit rate: {hit_rate:.3f} (> 0.9: OK)")

    # -- plan persistence + prewarm: a restarted server replans nothing
    with tempfile.TemporaryDirectory() as cache_dir:
        first = PlanCache(store=PlanCacheStore(cache_dir))
        server, _ = asyncio.run(
            serve_trace(LOOSE_SLO_MS, first, prewarm=True)
        )
        assert server.metrics.prewarmed_plans > 0
        assert server.metrics.cold_compiles == 0  # prewarm beat the traffic
        print(f"\nprewarmed start: {server.metrics.prewarmed_plans} plans "
              f"compiled before traffic, 0 cold compiles under load")

        restarted = PlanCache(store=PlanCacheStore(cache_dir))
        server, _ = asyncio.run(serve_trace(LOOSE_SLO_MS, restarted))
        stats = restarted.stats()
        assert stats.compiles == 0, stats
        assert server.metrics.cold_compiles == 0
        print(f"persisted restart: {stats.persisted_entries} plans loaded "
              f"from the store, 0 compiles "
              f"({stats.persisted_hits} persisted hits under load)")


if __name__ == "__main__":
    main()
